// Small self-scheduling thread pool for embarrassingly parallel loops.
//
// Work is claimed dynamically from a shared atomic counter (chunk size 1):
// workers that finish early keep stealing remaining task indices, so
// uneven task costs — fault groups that drop early vs. groups that run to
// max_cycles — balance automatically. The calling thread participates as
// worker 0, so a pool of size N uses exactly N OS threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace sbst::util {

/// Number of hardware threads, never less than 1.
unsigned hardware_threads();

/// Reusable fixed-size pool. `run` dispatches `fn(task, worker)` over a
/// task index range and blocks until every task completed; exceptions
/// thrown by tasks are captured and the first one is rethrown from `run`.
/// A pool of size 1 has no background threads and runs tasks inline.
///
/// The pool itself is not re-entrant: `run` must not be called
/// concurrently from several threads, and tasks must not call back into
/// their own pool.
class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread. Always >= 1.
  unsigned size() const;

  /// Runs fn(task, worker) for every task in [0, num_tasks); `worker` is
  /// a stable index in [0, size()) identifying the executing thread, so
  /// callers can keep per-worker scratch state without locks. Returns
  /// once all tasks have finished. After a task throws, remaining tasks
  /// are abandoned (claimed but not executed) and the first exception is
  /// rethrown here. num_tasks == 0 returns immediately.
  ///
  /// `cancel`, when non-null, requests a graceful drain: once the flag
  /// reads true, no further tasks are invoked (in-flight tasks run to
  /// completion) and `run` returns normally. The flag is sampled before
  /// each task with relaxed ordering, so it may be set from a signal
  /// handler or any thread; a task already past its check still runs.
  void run(std::size_t num_tasks,
           const std::function<void(std::size_t, unsigned)>& fn,
           const std::atomic<bool>* cancel = nullptr);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace sbst::util
