#include "util/faulty_io.h"

#include <cerrno>

namespace sbst::util {

namespace {

// Process-global plan. The campaign's durable writes are serialized (the
// journal mutex, atomic_file's single-threaded callers), and tests arm
// plans before any worker starts, so plain globals suffice.
IoFaultPlan g_plan;
std::uint64_t g_written = 0;
bool g_tripped = false;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void arm_io_faults(const IoFaultPlan& plan) {
  g_plan = plan;
  g_written = 0;
  g_tripped = false;
}

void disarm_io_faults() {
  g_plan = IoFaultPlan{};
  g_written = 0;
  g_tripped = false;
}

bool io_fault_tripped() { return g_tripped; }

std::uint64_t io_bytes_written() { return g_written; }

IoFaultPlan io_plan_from_seed(std::uint64_t seed, std::uint64_t max_byte) {
  IoFaultPlan plan;
  const std::uint64_t h = splitmix64(seed);
  plan.kind = static_cast<IoFailure>(1 + static_cast<int>(h % 4));
  plan.fail_at_byte = max_byte != 0 ? splitmix64(h) % max_byte : 0;
  return plan;
}

std::size_t checked_fwrite(std::FILE* f, const void* data, std::size_t n) {
  if (g_plan.kind == IoFailure::kNone) return std::fwrite(data, 1, n, f);

  std::size_t allowed = n;
  const bool past_boundary =
      g_tripped || g_written + n > g_plan.fail_at_byte;
  if (past_boundary && g_plan.kind != IoFailure::kFsyncFail) {
    allowed = g_tripped ? 0
                        : static_cast<std::size_t>(g_plan.fail_at_byte -
                                                   g_written);
  }
  std::size_t wrote = allowed != 0 ? std::fwrite(data, 1, allowed, f) : 0;
  if (allowed != 0) std::fflush(f);  // make the partial write durable
  g_written += wrote;

  if (past_boundary && g_plan.kind != IoFailure::kFsyncFail) {
    g_tripped = true;
    switch (g_plan.kind) {
      case IoFailure::kShortWrite:
        errno = 0;  // looks like a plain short count, no diagnosis
        break;
      case IoFailure::kEnospc:
        errno = ENOSPC;
        break;
      case IoFailure::kKill:
        throw IoKilled();
      default:
        break;
    }
    return wrote;
  }
  return wrote;
}

int checked_fflush(std::FILE* f) {
  if (g_plan.kind == IoFailure::kNone) return std::fflush(f);
  if (g_plan.kind == IoFailure::kFsyncFail &&
      (g_tripped || g_written > g_plan.fail_at_byte)) {
    g_tripped = true;
    std::fflush(f);  // bytes may still land; only the durability ack fails
    errno = EIO;
    return EOF;
  }
  return std::fflush(f);
}

}  // namespace sbst::util
