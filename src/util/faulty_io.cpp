#include "util/faulty_io.h"

#include <unistd.h>

#include <cerrno>

namespace sbst::util {

namespace {

// Process-global plan. The campaign's durable writes are serialized (the
// journal mutex, atomic_file's single-threaded callers), and tests arm
// plans before any worker starts, so plain globals suffice.
IoFaultPlan g_plan;
std::uint64_t g_written = 0;
bool g_tripped = false;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void arm_io_faults(const IoFaultPlan& plan) {
  g_plan = plan;
  g_written = 0;
  g_tripped = false;
}

void disarm_io_faults() {
  g_plan = IoFaultPlan{};
  g_written = 0;
  g_tripped = false;
}

bool io_fault_tripped() { return g_tripped; }

std::uint64_t io_bytes_written() { return g_written; }

IoFaultPlan io_plan_from_seed(std::uint64_t seed, std::uint64_t max_byte) {
  IoFaultPlan plan;
  const std::uint64_t h = splitmix64(seed);
  plan.kind = static_cast<IoFailure>(1 + static_cast<int>(h % 4));
  plan.fail_at_byte = max_byte != 0 ? splitmix64(h) % max_byte : 0;
  return plan;
}

std::size_t checked_fwrite(std::FILE* f, const void* data, std::size_t n) {
  if (g_plan.kind == IoFailure::kNone) return std::fwrite(data, 1, n, f);

  std::size_t allowed = n;
  const bool past_boundary =
      g_tripped || g_written + n > g_plan.fail_at_byte;
  if (past_boundary && g_plan.kind != IoFailure::kFsyncFail) {
    allowed = g_tripped ? 0
                        : static_cast<std::size_t>(g_plan.fail_at_byte -
                                                   g_written);
  }
  std::size_t wrote = allowed != 0 ? std::fwrite(data, 1, allowed, f) : 0;
  if (allowed != 0) std::fflush(f);  // make the partial write durable
  g_written += wrote;

  if (past_boundary && g_plan.kind != IoFailure::kFsyncFail) {
    g_tripped = true;
    switch (g_plan.kind) {
      case IoFailure::kShortWrite:
        errno = 0;  // looks like a plain short count, no diagnosis
        break;
      case IoFailure::kEnospc:
        errno = ENOSPC;
        break;
      case IoFailure::kKill:
        throw IoKilled();
      default:
        break;
    }
    return wrote;
  }
  return wrote;
}

int checked_fflush(std::FILE* f) {
  if (g_plan.kind == IoFailure::kNone) return std::fflush(f);
  if (g_plan.kind == IoFailure::kFsyncFail &&
      (g_tripped || g_written > g_plan.fail_at_byte)) {
    g_tripped = true;
    std::fflush(f);  // bytes may still land; only the durability ack fails
    errno = EIO;
    return EOF;
  }
  return std::fflush(f);
}

int checked_fsync(int fd) {
  if (g_plan.kind == IoFailure::kFsyncFail &&
      (g_tripped || g_written > g_plan.fail_at_byte)) {
    g_tripped = true;
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

DamagePlan damage_plan_from_seed(std::uint64_t seed, std::uint64_t min_offset,
                                 std::uint64_t file_size) {
  DamagePlan plan;
  const std::uint64_t h = splitmix64(seed ^ 0xdead10ccull);
  plan.kind = static_cast<DamageKind>(1 + static_cast<int>(h % 3));
  const std::uint64_t span =
      file_size > min_offset ? file_size - min_offset : 1;
  plan.offset = min_offset + splitmix64(h) % span;
  switch (plan.kind) {
    case DamageKind::kBitFlip:
      plan.length = 1 + splitmix64(h + 1) % 8;  // bit index via length % 8
      break;
    case DamageKind::kZeroPage:
      plan.length = 64 + splitmix64(h + 1) % 448;
      break;
    case DamageKind::kTruncateInterior:
      plan.length = 8 + splitmix64(h + 1) % 120;
      break;
  }
  return plan;
}

void apply_file_damage(const std::string& path, const DamagePlan& plan) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) throw std::runtime_error("cannot open " + path + " to damage it");
  std::string data;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) != 0) data.append(buf, n);
  std::fclose(in);

  if (!data.empty() && plan.offset < data.size()) {
    const std::size_t off = static_cast<std::size_t>(plan.offset);
    std::size_t len = static_cast<std::size_t>(plan.length);
    if (len > data.size() - off) len = data.size() - off;
    switch (plan.kind) {
      case DamageKind::kBitFlip:
        data[off] = static_cast<char>(
            data[off] ^ static_cast<char>(1u << (plan.length % 8)));
        break;
      case DamageKind::kZeroPage:
        data.replace(off, len, len, '\0');
        break;
      case DamageKind::kTruncateInterior:
        data.erase(off, len);
        break;
    }
  }

  // Plain rewrite, not write_file_atomic: the damage injector *is* the
  // storage failure and must not be subject to injected write faults.
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (!out) throw std::runtime_error("cannot rewrite " + path);
  const bool ok = std::fwrite(data.data(), 1, data.size(), out) == data.size();
  std::fclose(out);
  if (!ok) throw std::runtime_error("cannot rewrite " + path);
}

}  // namespace sbst::util
