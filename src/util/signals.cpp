#include "util/signals.h"

#include <csignal>

namespace sbst::util {

namespace {

std::atomic<bool> g_drain{false};
std::atomic<int> g_signal{0};

// Async-signal-safe: only lock-free atomics, std::signal and raise.
extern "C" void drain_handler(int sig) {
  if (g_drain.exchange(true)) {
    // Second signal: give up on graceful drain, die with the default
    // disposition (so `kill` twice / Ctrl-C twice always terminates).
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  g_signal.store(sig);
}

}  // namespace

void install_drain_handlers() {
  static_assert(std::atomic<bool>::is_always_lock_free,
                "drain flag must be async-signal-safe");
  std::signal(SIGINT, drain_handler);
  std::signal(SIGTERM, drain_handler);
  // A campaign launched over ssh gets SIGHUP when the connection drops;
  // without this it died undrained, losing the in-flight groups.
  std::signal(SIGHUP, drain_handler);
}

const std::atomic<bool>& drain_requested() { return g_drain; }

int drain_signal() { return g_signal.load(); }

void reset_drain() {
  g_drain.store(false);
  g_signal.store(0);
}

}  // namespace sbst::util
