// Atomic whole-file writes: content lands at `path` either completely or
// not at all. The data is written to "<path>.tmp" in the same directory
// and renamed over the destination, so an interrupted process (crash,
// SIGKILL, full disk) can never leave a truncated or half-written
// artifact behind — at worst a stale .tmp that the next write replaces.
#pragma once

#include <string>
#include <string_view>

namespace sbst::util {

/// Writes `content` to `path` via tmp-file + rename. Throws
/// std::runtime_error (with the path in the message) if the temporary
/// cannot be written, flushed, or renamed; `path` is untouched on error.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace sbst::util
