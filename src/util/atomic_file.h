// Atomic whole-file writes: content lands at `path` either completely or
// not at all. The data is written to "<path>.tmp" in the same directory
// and renamed over the destination, so an interrupted process (crash,
// SIGKILL, full disk) can never leave a truncated or half-written
// artifact behind — at worst a stale .tmp that the next write replaces.
#pragma once

#include <string>
#include <string_view>

namespace sbst::util {

/// How hard durable writes push data toward stable storage. One policy
/// serves every durable sink (journal appends, atomic file swaps,
/// telemetry rewrites) so a campaign's crash-safety story is a single
/// knob rather than per-file folklore.
enum class Durability {
  /// Buffered only: fastest, survives a process crash (the OS holds the
  /// data) but not a kernel panic or power cut.
  kNone,
  /// Flush to the OS after every durable write (fflush). Default —
  /// survives any process death; an OS crash can still lose the tail.
  kFlush,
  /// fsync after every durable write; atomic swaps additionally fsync
  /// the file before rename and the parent directory after, so the
  /// rename itself survives power loss. Slowest, strongest.
  kFsync,
};

/// Parses "none" | "flush" | "fsync". Throws std::runtime_error on
/// anything else (shared by CLI flags and config plumbing).
Durability parse_durability(std::string_view name);
const char* durability_name(Durability d);

/// Writes `content` to `path` via tmp-file + rename. Throws
/// std::runtime_error (with the path in the message) if the temporary
/// cannot be written, flushed, or renamed; `path` is untouched on error.
/// Under Durability::kFsync the temporary is fsync'd before the rename
/// and the parent directory after it — without that pair, a power cut
/// shortly after "success" can roll the file back or lose it entirely
/// (rename durability needs the directory entry on disk too).
void write_file_atomic(const std::string& path, std::string_view content,
                       Durability durability = Durability::kFlush);

/// fsyncs the directory containing `path` (the parent of the final
/// component). Best effort on filesystems that refuse directory fds;
/// throws only when the directory cannot even be opened.
void fsync_parent_dir(const std::string& path);

}  // namespace sbst::util
