// Graceful-drain signal handling for long-running campaigns.
//
// The first SIGINT/SIGTERM/SIGHUP sets a process-wide atomic drain flag
// that cooperating loops (fault-sim group scheduler, campaign runner)
// poll between units of work; a second signal restores the default
// handler and re-raises, so an unresponsive process can still be killed
// with a second Ctrl-C. SIGHUP is in the set because campaigns launched
// over ssh must drain, not die, when the connection drops.
#pragma once

#include <atomic>

namespace sbst::util {

/// Installs SIGINT, SIGTERM and SIGHUP handlers that set the drain
/// flag. Idempotent; safe to call more than once.
void install_drain_handlers();

/// The process-wide drain flag. Point FaultSimOptions::cancel (or any
/// polling loop) at this. Readable whether or not handlers are
/// installed; starts false.
const std::atomic<bool>& drain_requested();

/// Signal number that triggered the drain (0 if none). For exit
/// messages ("interrupted by SIGTERM ...").
int drain_signal();

/// Clears the flag — for tests and for reusing the process after a
/// drained campaign.
void reset_drain();

}  // namespace sbst::util
