#include "util/argparse.h"

#include <limits>

namespace sbst::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  args_.reserve(static_cast<std::size_t>(argc < 0 ? 0 : argc));
  for (int i = 0; i < argc; ++i) args_.emplace_back(argv[i]);
}

ArgParser& ArgParser::flag(std::string_view name, bool* out) {
  specs_.push_back({std::string(name), Kind::kBool, out});
  return *this;
}

ArgParser& ArgParser::value(std::string_view name, std::string* out) {
  specs_.push_back({std::string(name), Kind::kString, out});
  return *this;
}

ArgParser& ArgParser::value_multi(std::string_view name,
                                  std::vector<std::string>* out) {
  specs_.push_back({std::string(name), Kind::kMulti, out});
  return *this;
}

ArgParser& ArgParser::value_u64(std::string_view name, std::uint64_t* out) {
  specs_.push_back({std::string(name), Kind::kU64, out});
  return *this;
}

ArgParser& ArgParser::value_size(std::string_view name, std::size_t* out) {
  specs_.push_back({std::string(name), Kind::kSize, out});
  return *this;
}

ArgParser& ArgParser::value_int(std::string_view name, int* out) {
  specs_.push_back({std::string(name), Kind::kInt, out});
  return *this;
}

ArgParser& ArgParser::value_unsigned(std::string_view name, unsigned* out) {
  specs_.push_back({std::string(name), Kind::kUnsigned, out});
  return *this;
}

ArgParser& ArgParser::value_count(std::string_view name, unsigned* out) {
  specs_.push_back({std::string(name), Kind::kCount, out});
  return *this;
}

const ArgParser::Spec* ArgParser::find(std::string_view name) const {
  for (const Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ArgParser::parse(std::size_t min_positional,
                                          std::size_t max_positional) {
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args_.size(); ++i) {
    const std::string& arg = args_[i];
    if (arg.size() < 2 || arg[0] != '-') {
      positional.push_back(arg);
      continue;
    }
    const Spec* spec = find(arg);
    if (!spec) throw ArgError("unknown flag '" + arg + "'");
    if (spec->kind == Kind::kBool) {
      *static_cast<bool*>(spec->out) = true;
      continue;
    }
    if (i + 1 >= args_.size()) {
      throw ArgError("flag '" + arg + "' requires a value");
    }
    const std::string& v = args_[++i];
    switch (spec->kind) {
      case Kind::kString:
        *static_cast<std::string*>(spec->out) = v;
        break;
      case Kind::kMulti:
        static_cast<std::vector<std::string>*>(spec->out)->push_back(v);
        break;
      case Kind::kU64:
        *static_cast<std::uint64_t*>(spec->out) = parse_u64(arg, v);
        break;
      case Kind::kSize:
        *static_cast<std::size_t*>(spec->out) =
            static_cast<std::size_t>(parse_u64(arg, v));
        break;
      case Kind::kInt: {
        const std::uint64_t u = parse_u64(arg, v);
        if (u > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
          throw ArgError("value for '" + arg + "' out of range: " + v);
        }
        *static_cast<int*>(spec->out) = static_cast<int>(u);
        break;
      }
      case Kind::kUnsigned: {
        const std::uint64_t u = parse_u64(arg, v);
        if (u > std::numeric_limits<unsigned>::max()) {
          throw ArgError("value for '" + arg + "' out of range: " + v);
        }
        *static_cast<unsigned*>(spec->out) = static_cast<unsigned>(u);
        break;
      }
      case Kind::kCount: {
        const std::uint64_t u = parse_u64(arg, v);
        if (u == 0) {
          throw ArgError("value for '" + arg + "' must be at least 1");
        }
        if (u > 4096) {
          throw ArgError("value for '" + arg + "' is implausibly large (" +
                         v + "); the maximum is 4096");
        }
        *static_cast<unsigned*>(spec->out) = static_cast<unsigned>(u);
        break;
      }
      case Kind::kBool:
        break;  // handled above
    }
  }
  if (positional.size() < min_positional) {
    throw ArgError("missing argument (got " +
                   std::to_string(positional.size()) + ", need at least " +
                   std::to_string(min_positional) + ")");
  }
  if (positional.size() > max_positional) {
    throw ArgError("unexpected extra argument '" +
                   positional[max_positional] + "'");
  }
  return positional;
}

std::uint64_t parse_u64(std::string_view context, std::string_view text) {
  if (text.empty()) {
    throw ArgError("value for '" + std::string(context) + "' is empty");
  }
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw ArgError("value for '" + std::string(context) +
                     "' is not a non-negative integer: '" +
                     std::string(text) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw ArgError("value for '" + std::string(context) +
                     "' overflows: '" + std::string(text) + "'");
    }
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace sbst::util
