#include "dsl/builder.h"

#include <stdexcept>

namespace sbst::dsl {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw nl::NetlistError(what);
}

}  // namespace

GateId Builder::not_(GateId a) {
  if (a == nl_->const0()) return nl_->const1();
  if (a == nl_->const1()) return nl_->const0();
  if (nl_->gate(a).kind == nl::GateKind::kNot) return nl_->gate(a).in[0];
  return nl_->add_gate(nl::GateKind::kNot, a);
}

GateId Builder::and_(GateId a, GateId b) {
  const GateId c0 = nl_->const0();
  const GateId c1 = nl_->const1();
  if (a == c0 || b == c0) return c0;
  if (a == c1) return b;
  if (b == c1) return a;
  if (a == b) return a;
  return nl_->add_gate(nl::GateKind::kAnd2, a, b);
}

GateId Builder::or_(GateId a, GateId b) {
  const GateId c0 = nl_->const0();
  const GateId c1 = nl_->const1();
  if (a == c1 || b == c1) return c1;
  if (a == c0) return b;
  if (b == c0) return a;
  if (a == b) return a;
  return nl_->add_gate(nl::GateKind::kOr2, a, b);
}

GateId Builder::nand_(GateId a, GateId b) {
  const GateId c0 = nl_->const0();
  const GateId c1 = nl_->const1();
  if (a == c0 || b == c0) return c1;
  if (a == c1) return not_(b);
  if (b == c1) return not_(a);
  if (a == b) return not_(a);
  return nl_->add_gate(nl::GateKind::kNand2, a, b);
}

GateId Builder::nor_(GateId a, GateId b) {
  const GateId c0 = nl_->const0();
  const GateId c1 = nl_->const1();
  if (a == c1 || b == c1) return c0;
  if (a == c0) return not_(b);
  if (b == c0) return not_(a);
  if (a == b) return not_(a);
  return nl_->add_gate(nl::GateKind::kNor2, a, b);
}

GateId Builder::xor_(GateId a, GateId b) {
  const GateId c0 = nl_->const0();
  const GateId c1 = nl_->const1();
  if (a == c0) return b;
  if (b == c0) return a;
  if (a == c1) return not_(b);
  if (b == c1) return not_(a);
  if (a == b) return c0;
  return nl_->add_gate(nl::GateKind::kXor2, a, b);
}

GateId Builder::xnor_(GateId a, GateId b) {
  const GateId c0 = nl_->const0();
  const GateId c1 = nl_->const1();
  if (a == c1) return b;
  if (b == c1) return a;
  if (a == c0) return not_(b);
  if (b == c0) return not_(a);
  if (a == b) return c1;
  return nl_->add_gate(nl::GateKind::kXnor2, a, b);
}

GateId Builder::mux(GateId sel, GateId a, GateId b) {
  const GateId c0 = nl_->const0();
  const GateId c1 = nl_->const1();
  if (a == b) return a;
  if (sel == c0) return a;
  if (sel == c1) return b;
  if (a == c0 && b == c1) return sel;
  if (a == c1 && b == c0) return not_(sel);
  if (a == c0) return and_(sel, b);
  if (b == c0) return and_(not_(sel), a);
  if (a == c1) return or_(not_(sel), b);
  if (b == c1) return or_(sel, a);
  return nl_->add_gate(nl::GateKind::kMux2, a, b, sel);
}

GateId Builder::reduce(std::span<const GateId> bits, nl::GateKind kind) {
  require(!bits.empty(), "reduce over empty bus");
  // Balanced tree keeps logic depth logarithmic.
  std::vector<GateId> cur(bits.begin(), bits.end());
  while (cur.size() > 1) {
    std::vector<GateId> next;
    next.reserve((cur.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(nl_->add_gate(kind, cur[i], cur[i + 1]));
    }
    if (cur.size() % 2 != 0) next.push_back(cur.back());
    cur = std::move(next);
  }
  return cur[0];
}

GateId Builder::reduce_and(std::span<const GateId> bits) {
  return reduce(bits, nl::GateKind::kAnd2);
}
GateId Builder::reduce_or(std::span<const GateId> bits) {
  return reduce(bits, nl::GateKind::kOr2);
}
GateId Builder::reduce_xor(std::span<const GateId> bits) {
  return reduce(bits, nl::GateKind::kXor2);
}

Bus Builder::constant(std::uint64_t value, int width) const {
  Bus b(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) b[static_cast<std::size_t>(i)] = lit((value >> i) & 1u);
  return b;
}

Bus Builder::not_bus(const Bus& a) {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = not_(a[i]);
  return r;
}

#define SBST_DSL_BITWISE(name, op)                              \
  Bus Builder::name(const Bus& a, const Bus& b) {               \
    require(a.size() == b.size(), #name ": width mismatch");    \
    Bus r(a.size());                                            \
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = op(a[i], b[i]); \
    return r;                                                   \
  }

SBST_DSL_BITWISE(and_bus, and_)
SBST_DSL_BITWISE(or_bus, or_)
SBST_DSL_BITWISE(xor_bus, xor_)
SBST_DSL_BITWISE(nor_bus, nor_)
#undef SBST_DSL_BITWISE

Bus Builder::mask_bus(const Bus& a, GateId en) {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = and_(a[i], en);
  return r;
}

Bus Builder::mux_bus(GateId sel, const Bus& a, const Bus& b) {
  require(a.size() == b.size(), "mux_bus: width mismatch");
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = mux(sel, a[i], b[i]);
  return r;
}

Bus Builder::mux_tree(const Bus& sel, std::span<const Bus> choices) {
  require(!choices.empty(), "mux_tree: no choices");
  const std::size_t width = choices[0].size();
  for (const Bus& c : choices) {
    require(c.size() == width, "mux_tree: choice width mismatch");
  }
  std::vector<Bus> cur(choices.begin(), choices.end());
  // Pad to full 2^k with the last choice so unused select codes produce a
  // defined value.
  const std::size_t full = std::size_t{1} << sel.size();
  require(cur.size() <= full, "mux_tree: too many choices for select width");
  while (cur.size() < full) cur.push_back(cur.back());

  for (std::size_t level = 0; level < sel.size(); ++level) {
    std::vector<Bus> next;
    next.reserve(cur.size() / 2);
    for (std::size_t i = 0; i < cur.size(); i += 2) {
      next.push_back(mux_bus(sel[level], cur[i], cur[i + 1]));
    }
    cur = std::move(next);
  }
  return cur[0];
}

Bus Builder::decoder(const Bus& sel, GateId enable) {
  const std::size_t n = std::size_t{1} << sel.size();
  Bus inv(sel.size());
  for (std::size_t i = 0; i < sel.size(); ++i) inv[i] = not_(sel[i]);
  Bus out(n);
  for (std::size_t code = 0; code < n; ++code) {
    Bus terms(sel.size());
    for (std::size_t b = 0; b < sel.size(); ++b) {
      terms[b] = ((code >> b) & 1u) ? sel[b] : inv[b];
    }
    GateId hit = reduce_and(terms);
    if (enable != nl::kNoGate) hit = and_(hit, enable);
    out[code] = hit;
  }
  return out;
}

Builder::AddResult Builder::add(const Bus& a, const Bus& b, GateId carry_in) {
  require(a.size() == b.size() && !a.empty(), "add: width mismatch");
  AddResult r;
  r.sum.resize(a.size());
  GateId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i + 1 == a.size()) r.carry_msb = carry;
    const GateId axb = xor_(a[i], b[i]);
    r.sum[i] = xor_(axb, carry);
    // carry' = a&b | carry&(a^b)
    carry = or_(and_(a[i], b[i]), and_(carry, axb));
  }
  r.carry_out = carry;
  return r;
}

Builder::AddResult Builder::sub(const Bus& a, const Bus& b) {
  return add(a, not_bus(b), lit(true));
}

Bus Builder::inc(const Bus& a) {
  // Half-adder chain: cheaper than full add with a constant.
  Bus r(a.size());
  GateId carry = lit(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    r[i] = xor_(a[i], carry);
    if (i + 1 < a.size()) carry = and_(a[i], carry);
  }
  return r;
}

Bus Builder::negate(const Bus& a) { return inc(not_bus(a)); }

GateId Builder::eq(const Bus& a, const Bus& b) {
  require(a.size() == b.size(), "eq: width mismatch");
  Bus x(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) x[i] = xnor_(a[i], b[i]);
  return reduce_and(x);
}

GateId Builder::is_zero(const Bus& a) { return not_(reduce_or(a)); }

GateId Builder::ult(const Bus& a, const Bus& b) {
  // a < b  <=>  borrow out of a - b  <=>  !carry_out.
  return not_(sub(a, b).carry_out);
}

GateId Builder::slt(const Bus& a, const Bus& b) {
  const AddResult d = sub(a, b);
  const GateId sign = d.sum.back();
  const GateId overflow = xor_(d.carry_out, d.carry_msb);
  return xor_(sign, overflow);
}

Bus Builder::shift_right_var(const Bus& data, const Bus& amount, GateId fill) {
  Bus cur = data;
  for (std::size_t level = 0; level < amount.size(); ++level) {
    const std::size_t dist = std::size_t{1} << level;
    Bus shifted(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      shifted[i] = (i + dist < cur.size()) ? cur[i + dist] : fill;
    }
    cur = mux_bus(amount[level], cur, shifted);
  }
  return cur;
}

Bus Builder::reverse(const Bus& a) { return Bus(a.rbegin(), a.rend()); }

Bus Builder::reg(int width, std::uint64_t reset_value) {
  Bus q(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    q[static_cast<std::size_t>(i)] =
        nl_->add_dff(nl::kNoGate, (reset_value >> i) & 1u);
  }
  return q;
}

void Builder::connect_reg(const Bus& q, const Bus& d) {
  require(q.size() == d.size(), "connect_reg: width mismatch");
  for (std::size_t i = 0; i < q.size(); ++i) {
    require(nl_->gate(q[i]).kind == nl::GateKind::kDff,
            "connect_reg: q bit is not a DFF");
    nl_->set_gate_input(q[i], 0, d[i]);
  }
}

Bus Builder::dff_bus(const Bus& d, std::uint64_t reset_value) {
  Bus q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    q[i] = nl_->add_dff(d[i], (reset_value >> i) & 1u);
  }
  return q;
}

Bus Builder::slice(const Bus& a, int lo, int n) {
  return Bus(a.begin() + lo, a.begin() + lo + n);
}

Bus Builder::cat(const Bus& lo, const Bus& hi) {
  Bus r = lo;
  r.insert(r.end(), hi.begin(), hi.end());
  return r;
}

Bus Builder::zero_extend(const Bus& a, int width) const {
  Bus r = a;
  while (static_cast<int>(r.size()) < width) r.push_back(lit(false));
  return r;
}

Bus Builder::sign_extend(const Bus& a, int width) const {
  Bus r = a;
  while (static_cast<int>(r.size()) < width) r.push_back(a.back());
  return r;
}

}  // namespace sbst::dsl
