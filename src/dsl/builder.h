// Hardware-construction DSL: structural elaboration of RT-level
// operators (adders, muxes, decoders, shifters, registers) into the gate
// netlist. This plays the role the paper's synthesis tool (Leonardo)
// played: turning the RT description of each processor component into a
// gate-level structure for fault grading and gate counting.
//
// Buses are little-endian vectors of nets: bits[0] is the LSB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace sbst::dsl {

using nl::GateId;
using Bus = std::vector<GateId>;

class Builder {
 public:
  explicit Builder(nl::Netlist& netlist) : nl_(&netlist) {}

  nl::Netlist& netlist() { return *nl_; }

  /// Scopes subsequently created gates to an RT component.
  void set_component(nl::ComponentId c) { nl_->set_current_component(c); }

  // --- single-bit gates --------------------------------------------------
  // Constant/identity folding mirrors what logic synthesis would do;
  // without it the elaborated netlist carries dead structures (e.g.
  // mux(sel, 0, 0)) whose faults are structurally untestable and would
  // distort both gate counts and fault-coverage denominators.
  GateId lit(bool v) const { return v ? nl_->const1() : nl_->const0(); }
  GateId buf(GateId a) { return nl_->add_gate(nl::GateKind::kBuf, a); }
  GateId not_(GateId a);
  GateId and_(GateId a, GateId b);
  GateId or_(GateId a, GateId b);
  GateId nand_(GateId a, GateId b);
  GateId nor_(GateId a, GateId b);
  GateId xor_(GateId a, GateId b);
  GateId xnor_(GateId a, GateId b);
  /// 2:1 mux: returns a when sel==0, b when sel==1.
  GateId mux(GateId sel, GateId a, GateId b);
  GateId and3(GateId a, GateId b, GateId c) { return and_(and_(a, b), c); }
  GateId or3(GateId a, GateId b, GateId c) { return or_(or_(a, b), c); }

  // --- reductions ---------------------------------------------------------
  GateId reduce_and(std::span<const GateId> bits);
  GateId reduce_or(std::span<const GateId> bits);
  GateId reduce_xor(std::span<const GateId> bits);
  GateId reduce_and(const Bus& b) { return reduce_and(std::span<const GateId>(b)); }
  GateId reduce_or(const Bus& b) { return reduce_or(std::span<const GateId>(b)); }
  GateId reduce_xor(const Bus& b) { return reduce_xor(std::span<const GateId>(b)); }

  // --- buses ---------------------------------------------------------------
  Bus constant(std::uint64_t value, int width) const;
  Bus input(const std::string& name, int width) {
    return nl_->add_input(name, width).bits;
  }
  void output(const std::string& name, const Bus& b) { nl_->add_output(name, b); }

  Bus not_bus(const Bus& a);
  Bus and_bus(const Bus& a, const Bus& b);
  Bus or_bus(const Bus& a, const Bus& b);
  Bus xor_bus(const Bus& a, const Bus& b);
  Bus nor_bus(const Bus& a, const Bus& b);
  /// Bitwise AND of a bus with one enable bit.
  Bus mask_bus(const Bus& a, GateId en);

  /// Per-bit 2:1 mux (a when sel==0, b when sel==1).
  Bus mux_bus(GateId sel, const Bus& a, const Bus& b);
  /// Mux tree over 2^sel.size() choices; missing choices repeat the last
  /// provided one.
  Bus mux_tree(const Bus& sel, std::span<const Bus> choices);
  /// One-hot decoder, output i == (sel == i) [AND-ed with enable if given].
  Bus decoder(const Bus& sel, GateId enable = nl::kNoGate);

  // --- arithmetic -----------------------------------------------------------
  struct AddResult {
    Bus sum;
    GateId carry_out = nl::kNoGate;
    /// Carry into the MSB position (used for signed-overflow detection).
    GateId carry_msb = nl::kNoGate;
  };
  /// Ripple-carry addition, widths must match.
  AddResult add(const Bus& a, const Bus& b, GateId carry_in);
  AddResult add(const Bus& a, const Bus& b) { return add(a, b, lit(false)); }
  /// a - b as a + ~b + 1; carry_out == 1 means "no borrow" (a >= b
  /// unsigned).
  AddResult sub(const Bus& a, const Bus& b);
  Bus inc(const Bus& a);
  Bus negate(const Bus& a);

  GateId eq(const Bus& a, const Bus& b);
  GateId is_zero(const Bus& a);
  /// Unsigned a < b.
  GateId ult(const Bus& a, const Bus& b);
  /// Signed a < b.
  GateId slt(const Bus& a, const Bus& b);

  // --- shifting --------------------------------------------------------------
  /// Logarithmic right shifter; vacated positions take `fill`.
  /// amount.size() selects over shifts 0 .. 2^k-1.
  Bus shift_right_var(const Bus& data, const Bus& amount, GateId fill);
  /// Bit-order reversal (pure wiring).
  static Bus reverse(const Bus& a);

  // --- registers ---------------------------------------------------------------
  /// Creates a register with its D inputs left open; connect with
  /// connect_reg once the next-state logic exists (for feedback paths).
  Bus reg(int width, std::uint64_t reset_value = 0);
  void connect_reg(const Bus& q, const Bus& d);
  /// Register with already-known input.
  Bus dff_bus(const Bus& d, std::uint64_t reset_value = 0);

  // --- wiring helpers -------------------------------------------------------------
  static Bus slice(const Bus& a, int lo, int n);
  static Bus cat(const Bus& lo, const Bus& hi);  // lo bits first
  Bus zero_extend(const Bus& a, int width) const;
  Bus sign_extend(const Bus& a, int width) const;

 private:
  nl::Netlist* nl_;
  GateId reduce(std::span<const GateId> bits, nl::GateKind kind);
};

}  // namespace sbst::dsl
