#include "verify/roundtrip.h"

#include <cstdio>

#include "isa/assembler.h"
#include "isa/mips.h"

namespace sbst::verify {

namespace {

using isa::Mnemonic;

/// SplitMix64 — tiny deterministic generator, same family as randprog's.
struct Rng {
  std::uint64_t state;

  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
};

/// A random canonical word for `mn`: every field the encoding defines is
/// randomized, every field it fixes (e.g. rs of SLL) is zero — exactly
/// the form the assembler itself emits.
std::uint32_t random_canonical_word(Mnemonic mn, Rng& rng) {
  const int rs = static_cast<int>(rng.below(32));
  const int rt = static_cast<int>(rng.below(32));
  const int rd = static_cast<int>(rng.below(32));
  const int sh = static_cast<int>(rng.below(32));
  const std::uint16_t imm = static_cast<std::uint16_t>(rng.next());
  switch (mn) {
    case Mnemonic::kSll:
    case Mnemonic::kSrl:
    case Mnemonic::kSra:
      return isa::encode_r(mn, rd, 0, rt, sh);
    case Mnemonic::kSllv:
    case Mnemonic::kSrlv:
    case Mnemonic::kSrav:
      return isa::encode_r(mn, rd, rs, rt);
    case Mnemonic::kJr:
    case Mnemonic::kMthi:
    case Mnemonic::kMtlo:
      return isa::encode_r(mn, 0, rs, 0);
    case Mnemonic::kJalr:
      return isa::encode_r(mn, rd, rs, 0);
    case Mnemonic::kMfhi:
    case Mnemonic::kMflo:
      return isa::encode_r(mn, rd, 0, 0);
    case Mnemonic::kMult:
    case Mnemonic::kMultu:
    case Mnemonic::kDiv:
    case Mnemonic::kDivu:
      return isa::encode_r(mn, 0, rs, rt);
    case Mnemonic::kAdd:
    case Mnemonic::kAddu:
    case Mnemonic::kSub:
    case Mnemonic::kSubu:
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kNor:
    case Mnemonic::kSlt:
    case Mnemonic::kSltu:
      return isa::encode_r(mn, rd, rs, rt);
    case Mnemonic::kBltz:
    case Mnemonic::kBgez:
    case Mnemonic::kBltzal:
    case Mnemonic::kBgezal:
    case Mnemonic::kBlez:
    case Mnemonic::kBgtz:
      return isa::encode_i(mn, 0, rs, imm);
    case Mnemonic::kJ:
    case Mnemonic::kJal:
      return isa::encode_j(mn, rng.below(1u << 26));
    case Mnemonic::kBeq:
    case Mnemonic::kBne:
      return isa::encode_i(mn, rt, rs, imm);
    case Mnemonic::kLui:
      return isa::encode_i(mn, rt, 0, imm);
    case Mnemonic::kAddi:
    case Mnemonic::kAddiu:
    case Mnemonic::kSlti:
    case Mnemonic::kSltiu:
    case Mnemonic::kAndi:
    case Mnemonic::kOri:
    case Mnemonic::kXori:
    case Mnemonic::kLb:
    case Mnemonic::kLh:
    case Mnemonic::kLw:
    case Mnemonic::kLbu:
    case Mnemonic::kLhu:
    case Mnemonic::kSb:
    case Mnemonic::kSh:
    case Mnemonic::kSw:
      return isa::encode_i(mn, rt, rs, imm);
    case Mnemonic::kInvalid:
      break;
  }
  return isa::kNop;
}

}  // namespace

RoundTripResult run_roundtrip_fuzz(std::uint64_t seed, int iterations) {
  RoundTripResult result;
  Rng rng{seed * 0x9E3779B97F4A7C15ull + 1};

  constexpr int kFirst = static_cast<int>(Mnemonic::kSll);
  constexpr int kLast = static_cast<int>(Mnemonic::kSw);

  for (int it = 0; it < iterations; ++it) {
    const Mnemonic mn =
        static_cast<Mnemonic>(kFirst + it % (kLast - kFirst + 1));
    const std::uint32_t word = random_canonical_word(mn, rng);
    // Word-aligned address, high enough that the most negative branch
    // offset (-32768 words) still targets a non-negative address, and in
    // segment 0 so every 26-bit jump target is expressible.
    const std::uint32_t addr = 0x20000 + 4 * rng.below(4096);
    const std::string text = isa::disassemble(word, addr);
    ++result.iterations;

    RoundTripFailure f;
    f.word = word;
    f.addr = addr;
    f.text = text;

    char org[32];
    std::snprintf(org, sizeof(org), ".org 0x%X\n", addr);
    bool failed = false;
    try {
      const isa::Program p = isa::assemble(std::string(org) + text + "\n");
      f.reassembled = p.words.at(addr / 4);
      failed = f.reassembled != word;
    } catch (const isa::AsmError& e) {
      f.error = e.what();
      failed = true;
    }
    if (failed && result.failures.size() < RoundTripResult::kMaxFailures) {
      result.failures.push_back(std::move(f));
    }
  }
  return result;
}

}  // namespace sbst::verify
