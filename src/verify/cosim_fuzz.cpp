#include "verify/cosim_fuzz.h"

#include <cstdio>

#include "isa/mips.h"
#include "iss/iss.h"
#include "plasma/testbench.h"

namespace sbst::verify {

namespace {

constexpr std::size_t kMemBytes = 1 << 16;

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%X", v);
  return buf;
}

isa::Program image_from_words(const std::vector<std::uint32_t>& words) {
  isa::Program p;
  p.words = words;
  return p;
}

/// True when the program stays in the architecturally well-defined subset
/// the oracle is specified for: no branch or jump in a delay slot (MIPS I
/// leaves that unpredictable, so ISS and gate level may legally differ).
/// randprog never emits such programs, but the shrinker's chunk removal
/// can create one by deleting a delay slot.
bool well_defined(const std::vector<std::uint32_t>& words) {
  bool prev_transfers = false;
  for (std::uint32_t word : words) {
    const isa::Decoded d = isa::decode(word);
    const bool transfers = isa::is_branch(d.mn) || isa::is_jump(d.mn);
    if (transfers && prev_transfers) return false;
    prev_transfers = transfers;
  }
  return true;
}

}  // namespace

CosimOutcome compare_iss_gate(const plasma::PlasmaCpu& cpu,
                              const std::vector<std::uint32_t>& words,
                              std::uint64_t max_cycles) {
  CosimOutcome out;
  const isa::Program program = image_from_words(words);

  iss::Iss ref(program, kMemBytes);
  const iss::RunResult rr = ref.run(max_cycles);
  if (!rr.halted) return out;  // not comparable
  out.comparable = true;

  const plasma::GateRunResult gr =
      plasma::run_gate_cpu(cpu, program, rr.cycles + 64, kMemBytes);

  auto mismatch = [&out](std::string detail) {
    out.agree = false;
    out.detail = std::move(detail);
  };

  if (!gr.halted) {
    mismatch("gate-level CPU did not halt within " +
             std::to_string(rr.cycles + 64) + " cycles (ISS halted after " +
             std::to_string(rr.cycles) + ")");
    return out;
  }

  const std::vector<iss::WriteOp>& rw = ref.writes();
  const std::size_t n = std::min(rw.size(), gr.writes.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (rw[i] == gr.writes[i]) continue;
    mismatch("write " + std::to_string(i) + " differs: ISS {addr=" +
             hex32(rw[i].addr) + " data=" + hex32(rw[i].data) +
             " be=" + std::to_string(rw[i].byte_en) + "}, gate {addr=" +
             hex32(gr.writes[i].addr) + " data=" + hex32(gr.writes[i].data) +
             " be=" + std::to_string(gr.writes[i].byte_en) + "}");
    return out;
  }
  if (rw.size() != gr.writes.size()) {
    mismatch("write-trace length differs: ISS " + std::to_string(rw.size()) +
             ", gate " + std::to_string(gr.writes.size()));
    return out;
  }

  for (int r = 1; r < 32; ++r) {
    const std::uint32_t want = ref.reg(r);
    const std::uint32_t got = gr.regs[static_cast<std::size_t>(r)];
    if (want != got) {
      mismatch("final $" + std::to_string(r) + " differs: ISS " + hex32(want) +
               ", gate " + hex32(got));
      return out;
    }
  }
  if (ref.hi() != gr.hi) {
    mismatch("final HI differs: ISS " + hex32(ref.hi()) + ", gate " +
             hex32(gr.hi));
    return out;
  }
  if (ref.lo() != gr.lo) {
    mismatch("final LO differs: ISS " + hex32(ref.lo()) + ", gate " +
             hex32(gr.lo));
    return out;
  }

  if (rr.cycles != gr.cycles) {
    mismatch("cycle count differs: ISS " + std::to_string(rr.cycles) +
             ", gate " + std::to_string(gr.cycles));
    return out;
  }
  return out;
}

std::vector<std::uint32_t> shrink_program(const plasma::PlasmaCpu& cpu,
                                          std::vector<std::uint32_t> words,
                                          std::uint64_t max_cycles,
                                          ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;

  auto still_fails = [&](const std::vector<std::uint32_t>& cand) {
    if (!well_defined(cand)) return false;
    ++st.checks;
    const CosimOutcome o = compare_iss_gate(cpu, cand, max_cycles);
    return o.comparable && !o.agree;
  };

  if (!still_fails(words)) return words;

  bool changed = true;
  while (changed) {
    changed = false;
    ++st.rounds;

    // Window removal, halving the window until single instructions.
    std::size_t window = words.size() / 2;
    if (window == 0) window = 1;
    for (; window >= 1; window /= 2) {
      std::size_t i = 0;
      while (i < words.size() && words.size() > 1) {
        std::vector<std::uint32_t> cand;
        cand.reserve(words.size());
        cand.insert(cand.end(), words.begin(),
                    words.begin() + static_cast<std::ptrdiff_t>(i));
        const std::size_t end = std::min(words.size(), i + window);
        cand.insert(cand.end(),
                    words.begin() + static_cast<std::ptrdiff_t>(end),
                    words.end());
        if (still_fails(cand)) {
          words = std::move(cand);
          changed = true;
        } else {
          i += window;
        }
      }
    }

    // Neutralize single instructions to nop — keeps addresses (and thus
    // branch geometry) stable where removal cannot.
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i] == isa::kNop) continue;
      std::vector<std::uint32_t> cand = words;
      cand[i] = isa::kNop;
      if (still_fails(cand)) {
        words = std::move(cand);
        changed = true;
      }
    }
  }
  return words;
}

FuzzResult run_cosim_fuzz(const plasma::PlasmaCpu& cpu,
                          const FuzzOptions& options) {
  FuzzResult result;
  for (int i = 0; i < options.iterations; ++i) {
    const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(i);
    const isa::Program prog = iss::random_program(seed, options.prog);
    ++result.iterations_run;

    const CosimOutcome o =
        compare_iss_gate(cpu, prog.words, options.max_cycles);
    if (!o.comparable || o.agree) continue;

    FuzzMismatch m;
    m.seed = seed;
    m.detail = o.detail;
    m.program = prog.words;
    m.reduced = options.shrink
                    ? shrink_program(cpu, prog.words, options.max_cycles,
                                     &m.shrink_stats)
                    : prog.words;
    result.mismatch = std::move(m);
    break;
  }
  return result;
}

std::string render_reproducer(const std::vector<std::uint32_t>& words,
                              std::string_view header) {
  std::string out;
  std::string line;
  std::size_t start = 0;
  while (start <= header.size()) {
    std::size_t nl = header.find('\n', start);
    if (nl == std::string_view::npos) nl = header.size();
    line.assign(header.substr(start, nl - start));
    if (!line.empty()) out += "# " + line + "\n";
    start = nl + 1;
  }
  out += ".org 0\n";
  char buf[64];
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t addr = static_cast<std::uint32_t>(i) * 4;
    std::snprintf(buf, sizeof(buf), ".word 0x%08X  # %04X: ", words[i], addr);
    out += buf;
    out += isa::disassemble(words[i], addr);
    out += '\n';
  }
  return out;
}

nl::GateId inject_alu_carry_bug(plasma::PlasmaCpu& cpu) {
  const nl::ComponentId alu = cpu.component_id(plasma::PlasmaComponent::kAlu);
  const std::span<const nl::Gate> gates = cpu.netlist.gates();
  nl::GateId and_fallback = nl::kNoGate;
  for (nl::GateId g = 0; g < gates.size(); ++g) {
    if (gates[g].component != alu) continue;
    if (gates[g].kind == nl::GateKind::kXor2) {
      cpu.netlist.set_gate_kind(g, nl::GateKind::kXnor2);
      return g;
    }
    if (and_fallback == nl::kNoGate && gates[g].kind == nl::GateKind::kAnd2) {
      and_fallback = g;
    }
  }
  if (and_fallback != nl::kNoGate) {
    cpu.netlist.set_gate_kind(and_fallback, nl::GateKind::kOr2);
    return and_fallback;
  }
  throw nl::NetlistError("inject_alu_carry_bug: no XOR2/AND2 gate in ALU");
}

}  // namespace sbst::verify
