// Differential co-simulation fuzzer with automatic reproducer shrinking.
//
// The reproduction rests on one oracle: the MIPS I ISS and the gate-level
// Plasma CPU must agree on every architecturally well-defined program
// (DESIGN.md §5, "ISS is the oracle"). This module hunts for
// disagreements systematically:
//
//   1. generate constrained-random programs with iss/randprog,
//   2. run each on both simulators and compare the full memory-write
//      trace, cycle count and final architectural state,
//   3. on mismatch, shrink the failing program with delta-debugging —
//      drop instruction windows, neutralize single instructions to `nop`,
//      re-check after every candidate — down to a minimal reproducer that
//      can be written to disk as a re-assemblable listing.
//
// The shrinker only accepts candidates that remain architecturally
// well-defined (no branch or jump in a delay slot) and still mismatch,
// so the reduced program is a true divergence witness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "iss/randprog.h"
#include "plasma/cpu.h"

namespace sbst::verify {

/// Outcome of one differential run of a word image.
struct CosimOutcome {
  /// True when the reference (ISS) run halted within budget — only then
  /// is agreement meaningful; programs that run off into the weeds are
  /// skipped, not failed.
  bool comparable = false;
  bool agree = true;
  /// First divergence, human-readable (empty when agree).
  std::string detail;
};

/// Runs `words` (a memory image from address 0) on the ISS and on the
/// gate-level CPU and compares memory-write traces, cycle counts and the
/// final register/hi/lo state.
CosimOutcome compare_iss_gate(const plasma::PlasmaCpu& cpu,
                              const std::vector<std::uint32_t>& words,
                              std::uint64_t max_cycles = 100'000);

struct ShrinkStats {
  int checks = 0;  // differential runs performed
  int rounds = 0;  // fixpoint iterations
};

/// Delta-debugging minimizer: returns the smallest program found that
/// still triggers an ISS-vs-gate mismatch. `words` must itself mismatch;
/// if it does not, it is returned unchanged.
std::vector<std::uint32_t> shrink_program(const plasma::PlasmaCpu& cpu,
                                          std::vector<std::uint32_t> words,
                                          std::uint64_t max_cycles = 100'000,
                                          ShrinkStats* stats = nullptr);

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iterations = 20;
  /// Program shape; the generator only emits architecturally
  /// well-defined programs (see iss/randprog.h).
  iss::RandProgOptions prog;
  std::uint64_t max_cycles = 100'000;
  bool shrink = true;
};

struct FuzzMismatch {
  std::uint64_t seed = 0;         // randprog seed that produced the failure
  std::string detail;             // first divergence of the original program
  std::vector<std::uint32_t> program;  // original failing program
  std::vector<std::uint32_t> reduced;  // shrunk reproducer (== program when
                                       // shrinking is disabled)
  ShrinkStats shrink_stats;
};

struct FuzzResult {
  int iterations_run = 0;
  /// First mismatch found; the fuzzer stops at the first failure.
  std::optional<FuzzMismatch> mismatch;
};

FuzzResult run_cosim_fuzz(const plasma::PlasmaCpu& cpu,
                          const FuzzOptions& options = {});

/// Renders a word image as a re-assemblable listing: one `.word` per
/// line, each annotated with its address and disassembly. `header` is
/// emitted as leading comment lines.
std::string render_reproducer(const std::vector<std::uint32_t>& words,
                              std::string_view header);

/// Test hook: deliberately corrupts the gate-level ALU by flipping one
/// XOR in its add/sub carry-sum network to XNOR (falling back to an
/// AND→OR flip for exotic mappings). Used by the fuzzer's own tests and
/// by `sbst fuzz --inject-alu-bug` to demonstrate end-to-end detection
/// and shrinking. Returns the mutated gate.
nl::GateId inject_alu_carry_bug(plasma::PlasmaCpu& cpu);

}  // namespace sbst::verify
