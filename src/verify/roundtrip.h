// Assembler↔disassembler round-trip fuzzer.
//
// For every mnemonic in the MIPS I table it generates random canonical
// instruction words, disassembles each at a random address, re-assembles
// the text (placed at that address via `.org`) and requires the identical
// word back. This closes the loop between src/isa's three views of an
// instruction — encoder, decoder/printer, parser — and catches printing
// bugs that silently break reproducer listings (wrong radix, raw branch
// offsets, signed/unsigned immediate mismatches).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbst::verify {

struct RoundTripFailure {
  std::uint32_t word = 0;         // original canonical word
  std::uint32_t addr = 0;         // address it was disassembled at
  std::string text;               // disassembly
  std::uint32_t reassembled = 0;  // word produced by re-assembly (0 on error)
  std::string error;              // assembler diagnostic, empty if it parsed
};

struct RoundTripResult {
  int iterations = 0;  // words checked
  /// Collected failures, capped at kMaxFailures so a systematic breakage
  /// does not produce an unbounded report.
  std::vector<RoundTripFailure> failures;

  static constexpr std::size_t kMaxFailures = 32;
  bool ok() const { return failures.empty(); }
};

/// Checks `iterations` random canonical words, cycling through the whole
/// mnemonic table so every format is exercised even for small budgets.
RoundTripResult run_roundtrip_fuzz(std::uint64_t seed, int iterations);

}  // namespace sbst::verify
