// Pseudorandom software self-test baseline (the prior art the paper
// argues against, in the spirit of [2]-[6]): a software-emulated LFSR
// expands a seed into pseudorandom operands that are applied to the
// functional units in a loop, with responses XOR-compacted to memory.
//
// Program size is small and fixed; test quality is bought with execution
// time (pattern count), which is the trade-off the comparison bench
// (bench_pseudorandom_comparison) measures against the deterministic
// library routines.
#pragma once

#include <cstdint>

#include "core/program.h"

namespace sbst::baseline {

struct PseudoRandomOptions {
  std::uint32_t patterns = 256;     // LFSR expansion count
  std::uint32_t seed = 0xACE1ACE1;  // initial LFSR state (non-zero)
  bool with_muldiv = true;          // include mult/div each 8th pattern
};

/// Builds the complete pseudorandom self-test program.
core::SelfTestProgram build_pseudorandom_program(
    const PseudoRandomOptions& options = {});

/// The 32-bit Galois LFSR the generated code emulates (for tests).
std::uint32_t lfsr_step(std::uint32_t state);

}  // namespace sbst::baseline
