#include "baseline/prand.h"

#include <cstdio>

namespace sbst::baseline {

namespace {

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08X", v);
  return buf;
}

}  // namespace

std::uint32_t lfsr_step(std::uint32_t x) {
  // xorshift32: the exact sequence the generated MIPS code produces.
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return x;
}

core::SelfTestProgram build_pseudorandom_program(
    const PseudoRandomOptions& opt) {
  const std::uint32_t seed_b = opt.seed ^ 0x9E3779B9u;
  std::string s;
  s += "# software-LFSR pseudorandom self-test (baseline)\n";
  s += "li $30, " + hex(core::kResultBufferBase) + "\n";
  s += "li $8, " + hex(opt.seed) + "\n";
  s += "li $9, " + hex(seed_b) + "\n";
  s += "li $14, " + std::to_string(opt.patterns) + "\n";
  s += "li $13, 0\n";
  s += "Lpr_loop:\n";
  // Advance both software LFSRs (xorshift32).
  for (const char* reg : {"$8", "$9"}) {
    s += std::string("sll $12, ") + reg + ", 13\n";
    s += std::string("xor ") + reg + ", " + reg + ", $12\n";
    s += std::string("srl $12, ") + reg + ", 17\n";
    s += std::string("xor ") + reg + ", " + reg + ", $12\n";
    s += std::string("sll $12, ") + reg + ", 5\n";
    s += std::string("xor ") + reg + ", " + reg + ", $12\n";
  }
  // Apply the pseudorandom operands to the functional units.
  for (const char* op : {"addu", "subu", "and", "or", "xor", "nor", "slt",
                         "sltu"}) {
    s += std::string(op) + " $12, $8, $9\n";
    s += "xor $13, $13, $12\n";
  }
  for (const char* op : {"sllv", "srlv", "srav"}) {
    s += std::string(op) + " $12, $8, $9\n";
    s += "xor $13, $13, $12\n";
  }
  if (opt.with_muldiv) {
    // Every 8th pattern (mult/div dominate runtime otherwise).
    s += "andi $12, $14, 7\n";
    s += "bne $12, $0, Lpr_skipmd\n";
    s += "nop\n";
    s += "mult $8, $9\n";
    s += "mflo $12\nxor $13, $13, $12\n";
    s += "mfhi $12\nxor $13, $13, $12\n";
    s += "divu $8, $9\n";
    s += "mflo $12\nxor $13, $13, $12\n";
    s += "mfhi $12\nxor $13, $13, $12\n";
    s += "Lpr_skipmd:\n";
  }
  s += "addiu $14, $14, -1\n";
  s += "bne $14, $0, Lpr_loop\n";
  s += "sw $13, 0($30)\n";  // delay slot: signature store

  core::SelfTestProgramBuilder b;
  b.add_routine(core::RoutineSpec{"prand", plasma::PlasmaComponent::kAlu,
                                  std::move(s), ""});
  return b.build("pseudorandom-" + std::to_string(opt.patterns));
}

}  // namespace sbst::baseline
