#include "telemetry/json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace sbst::telemetry {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool done() {
    skip_ws();
    return pos >= text.size();
  }
};

/// Body of a string literal; the opening quote is already consumed.
bool parse_string(Cursor* c, std::string* out) {
  out->clear();
  const std::string_view t = c->text;
  while (c->pos < t.size()) {
    const char ch = t[c->pos++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c->pos >= t.size()) return false;
    const char esc = t[c->pos++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (c->pos + 4 > t.size()) return false;
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = t[c->pos++];
          v <<= 4;
          if (h >= '0' && h <= '9') {
            v |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            v |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            v |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        // UTF-8-encode the code point. Surrogate pairs are not
        // reassembled: our own writer only emits \u below 0x20, so
        // this branch only sees foreign files, where a lone surrogate
        // round-trips as its 3-byte encoding.
        if (v < 0x80) {
          out->push_back(static_cast<char>(v));
        } else if (v < 0x800) {
          out->push_back(static_cast<char>(0xc0 | (v >> 6)));
          out->push_back(static_cast<char>(0x80 | (v & 0x3f)));
        } else {
          out->push_back(static_cast<char>(0xe0 | (v >> 12)));
          out->push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (v & 0x3f)));
        }
        break;
      }
      default:
        return false;
    }
  }
  return false;  // EOF inside the literal
}

bool parse_number(Cursor* c, JsonValue* out) {
  const std::size_t start = c->pos;
  const std::string_view t = c->text;
  while (c->pos < t.size()) {
    const char ch = t[c->pos];
    const bool number_char = (ch >= '0' && ch <= '9') || ch == '-' ||
                             ch == '+' || ch == '.' || ch == 'e' || ch == 'E';
    if (!number_char) break;
    ++c->pos;
  }
  if (c->pos == start) return false;
  const std::string token(t.substr(start, c->pos - start));
  char* end = nullptr;
  out->number = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  out->kind = JsonValue::Kind::kNumber;
  bool digits_only = true;
  for (const char ch : token) digits_only = digits_only && ch >= '0' && ch <= '9';
  if (digits_only) {
    errno = 0;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (errno == 0 && end == token.c_str() + token.size()) {
      out->u64 = v;
      out->u64_valid = true;
    }
  }
  return true;
}

}  // namespace

bool parse_flat_json_object(std::string_view text,
                            std::map<std::string, JsonValue>* out) {
  out->clear();
  Cursor c{text};
  if (!c.eat('{')) return false;
  if (c.eat('}')) return c.done();
  while (true) {
    if (!c.eat('"')) return false;
    std::string key;
    if (!parse_string(&c, &key)) return false;
    if (!c.eat(':')) return false;
    c.skip_ws();
    if (c.pos >= text.size()) return false;
    JsonValue v;
    const char head = text[c.pos];
    if (head == '"') {
      ++c.pos;
      v.kind = JsonValue::Kind::kString;
      if (!parse_string(&c, &v.str)) return false;
    } else if (text.compare(c.pos, 4, "true") == 0) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      c.pos += 4;
    } else if (text.compare(c.pos, 5, "false") == 0) {
      v.kind = JsonValue::Kind::kBool;
      c.pos += 5;
    } else if (text.compare(c.pos, 4, "null") == 0) {
      c.pos += 4;
    } else if (head == '{' || head == '[') {
      return false;  // the telemetry schema is flat by design
    } else if (!parse_number(&c, &v)) {
      return false;
    }
    (*out)[key] = std::move(v);
    if (c.eat(',')) continue;
    if (c.eat('}')) return c.done();
    return false;
  }
}

}  // namespace sbst::telemetry
