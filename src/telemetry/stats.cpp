#include "telemetry/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>

#include "telemetry/metrics.h"

namespace sbst::telemetry {

double percentile_nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

void MetricsFolder::fold(const GroupMetric& m) {
  MetricsSummary& s = summary_;
  ++s.records;
  if (m.seeded) {
    ++s.seeded;
  } else {
    ++s.simulated;
    durations_.push_back(m.duration_ms);
    s.total_ms += m.duration_ms;
    simulated_gates_ += m.gates_evaluated;
  }
  if (m.timed_out) ++s.timed_out_groups;
  if (m.quarantined) ++s.quarantined_groups;
  if (m.engine == "event") ++s.event_groups;
  else if (m.engine == "sweep") ++s.sweep_groups;
  else ++s.none_groups;
  s.faults += m.faults;
  s.detected += m.detected;
  if (m.attempts > 1) s.retries += m.attempts - 1;
  s.gates_evaluated += m.gates_evaluated;
  s.sim_cycles += m.sim_cycles;
  s.evals_and += m.evals_and;
  s.evals_or += m.evals_or;
  s.evals_xor += m.evals_xor;
  s.evals_mux += m.evals_mux;
  s.max_rss_kb = std::max(s.max_rss_kb, m.max_rss_kb);
  s.cpu_ms += m.cpu_ms;
}

void MetricsFolder::count_malformed() { ++summary_.malformed; }

MetricsSummary MetricsFolder::finish() {
  std::sort(durations_.begin(), durations_.end());
  summary_.p50_ms = percentile_nearest_rank(durations_, 50.0);
  summary_.p95_ms = percentile_nearest_rank(durations_, 95.0);
  summary_.p99_ms = percentile_nearest_rank(durations_, 99.0);
  if (!durations_.empty()) summary_.max_ms = durations_.back();
  if (simulated_gates_ != 0) {
    summary_.eval_ns_per_gate =
        summary_.total_ms * 1e6 / static_cast<double>(simulated_gates_);
  }
  return summary_;
}

MetricsSummary summarize_metrics(std::istream& in) {
  MetricsFolder folder;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    GroupMetric m;
    if (!metric_from_json(line, &m)) {
      folder.count_malformed();
      continue;
    }
    folder.fold(m);
  }
  return folder.finish();
}

void print_metrics_summary(std::ostream& os, const MetricsSummary& s) {
  os << "records: " << s.records << " groups (" << s.simulated
     << " simulated, " << s.seeded << " seeded), " << s.malformed
     << " malformed line(s)\n";
  os << "engines: event=" << s.event_groups << " sweep=" << s.sweep_groups
     << " none=" << s.none_groups << "\n";
  os << "verdicts: faults=" << s.faults << " detected=" << s.detected
     << " timed_out_groups=" << s.timed_out_groups
     << " quarantined_groups=" << s.quarantined_groups << "\n";
  char buf[160];
  if (s.sim_cycles != 0) {
    std::snprintf(buf, sizeof(buf),
                  "counters: gates_evaluated=%llu sim_cycles=%llu "
                  "gates_per_cycle=%.2f\n",
                  static_cast<unsigned long long>(s.gates_evaluated),
                  static_cast<unsigned long long>(s.sim_cycles),
                  static_cast<double>(s.gates_evaluated) /
                      static_cast<double>(s.sim_cycles));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "counters: gates_evaluated=%llu sim_cycles=%llu "
                  "gates_per_cycle=n/a\n",
                  static_cast<unsigned long long>(s.gates_evaluated),
                  static_cast<unsigned long long>(s.sim_cycles));
  }
  os << buf;
  // Deliberately NOT part of the bit-stable diff set (CI greps
  // engines/verdicts/counters): eval_ns_per_gate is run-local, and the
  // event engine's per-kind tallies depend on the kernel flavor.
  if (s.eval_ns_per_gate != 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "kernel: eval_ns_per_gate=%.3f evals_and=%llu "
                  "evals_or=%llu evals_xor=%llu evals_mux=%llu\n",
                  s.eval_ns_per_gate,
                  static_cast<unsigned long long>(s.evals_and),
                  static_cast<unsigned long long>(s.evals_or),
                  static_cast<unsigned long long>(s.evals_xor),
                  static_cast<unsigned long long>(s.evals_mux));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "kernel: eval_ns_per_gate=n/a evals_and=%llu "
                  "evals_or=%llu evals_xor=%llu evals_mux=%llu\n",
                  static_cast<unsigned long long>(s.evals_and),
                  static_cast<unsigned long long>(s.evals_or),
                  static_cast<unsigned long long>(s.evals_xor),
                  static_cast<unsigned long long>(s.evals_mux));
  }
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "latency: p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms "
                "total=%.3fms\n",
                s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms, s.total_ms);
  os << buf;
  os << "isolate: retries=" << s.retries << " peak_dead_rss_kb="
     << s.max_rss_kb << " dead_cpu_ms=" << s.cpu_ms << "\n";
}

}  // namespace sbst::telemetry
