// Per-group campaign telemetry: the `sbst grade --metrics` NDJSON
// stream and the `--status` heartbeat file.
//
// Every resolved 63-fault group — simulated this run or seeded from the
// journal — becomes one GroupMetric, serialized as one JSON object per
// line:
//
//   {"group":17,"faults":63,"detected":61,"engine":"event",
//    "seeded":false,"timed_out":false,"quarantined":false,
//    "cycles":2101,"gates_evaluated":184223,"sim_cycles":9120,
//    "evals_and":120034,"evals_or":40011,"evals_xor":24178,
//    "evals_mux":0,"attempts":1,"duration_ms":12.413,
//    "eval_ns_per_gate":67.381,"max_rss_kb":0,"cpu_ms":0}
//
// The fields split into two classes:
//
//   * counter fields (group, faults, detected, engine, verdict flags,
//     cycles, gates_evaluated, sim_cycles, evals_and/or/xor/mux) are a
//     pure function of the group's GroupRecord — bit-stable across
//     thread counts, --isolate and journal resumes for a fixed engine.
//     CI diffs these.
//   * run-local fields (seeded, attempts, duration_ms, eval_ns_per_gate,
//     max_rss_kb, cpu_ms) describe what *this* run spent on the group:
//     wall clock, per-evaluation cost, worker attempts consumed, and
//     (isolated mode) the rusage of worker attempts that died on it.
//     Humans read these as latency percentiles via `sbst stats`.
//
// Both sinks are written with util::write_file_atomic, so a reader —
// a dashboard tailing the status file, `sbst stats` mid-campaign —
// always sees a complete, parseable file, never a torn line. The
// metrics file is rewritten in full every `rewrite_every` records and
// at finish (campaigns are a few hundred to a few thousand groups;
// the quadratic rewrite cost is dwarfed by simulation); the status
// file is one JSON object rewritten at most once per heartbeat period.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/atomic_file.h"

namespace sbst::telemetry {

/// One resolved fault group, in telemetry terms. Decoupled from
/// fault::GroupRecord so the NDJSON schema can outlive engine
/// internals; campaign code translates (campaign::to_group_metric).
struct GroupMetric {
  std::uint64_t group = 0;
  std::uint32_t faults = 0;    // faults in the group, <= 63
  std::uint32_t detected = 0;  // of `faults`, detected
  std::string engine = "none";  // "event" | "sweep" | "none"
  bool seeded = false;          // replayed from the journal, not simulated
  bool timed_out = false;
  bool quarantined = false;
  std::uint64_t cycles = 0;  // good-machine cycles the group ran
  std::uint64_t gates_evaluated = 0;
  std::uint64_t sim_cycles = 0;
  /// Gate evaluations split by compiled base-op class (AND/OR/XOR/MUX —
  /// see nl::CompiledOp; NAND folds into AND, etc.). Counter fields:
  /// pure functions of the group's record. Zero on records that predate
  /// per-kind accounting.
  std::uint64_t evals_and = 0;
  std::uint64_t evals_or = 0;
  std::uint64_t evals_xor = 0;
  std::uint64_t evals_mux = 0;
  /// Worker attempts this group consumed (isolated mode; 1 elsewhere).
  std::uint32_t attempts = 1;
  /// Wall clock this run spent resolving the group (~0 when seeded).
  double duration_ms = 0.0;
  /// Run-local like duration_ms: wall nanoseconds per gate evaluation
  /// this run achieved on the group (duration_ms / gates_evaluated,
  /// scaled; 0 when seeded or when no gate was evaluated).
  double eval_ns_per_gate = 0.0;
  /// Isolated mode: peak RSS and summed user+sys CPU of worker attempts
  /// that *died* on this group (wait4 rusage) — a surviving worker's
  /// rusage is unknowable while it lives. 0 in threaded mode.
  std::uint64_t max_rss_kb = 0;
  std::uint64_t cpu_ms = 0;
};

/// Serializes one metric as a single NDJSON line (no trailing newline),
/// fields in the fixed order documented above.
std::string metric_to_json(const GroupMetric& m);

/// Parses one NDJSON line. Unknown keys are ignored (forward
/// compatibility); missing keys keep their defaults. Returns false on
/// malformed JSON or type-mismatched known fields.
bool metric_from_json(std::string_view line, GroupMetric* out);

/// Remaining-time estimate for a (possibly resumed) campaign. The rate
/// comes from the groups *this run* simulated (`done - seeded`):
/// journal-seeded groups replay in ~zero time against an elapsed clock
/// that started at this process's t0, so counting them makes a resumed
/// campaign's ETA wildly optimistic. Returns a negative value when no
/// estimate is possible — fewer than two groups simulated this run, or
/// inconsistent inputs (done > total).
double eta_seconds(std::size_t done, std::size_t seeded, std::size_t total,
                   double elapsed_s);

struct TelemetryOptions {
  /// NDJSON metrics stream; empty disables.
  std::string metrics_path;
  /// Heartbeat status JSON (single object); empty disables.
  std::string status_path;
  /// Rewrite the metrics file after this many new records (always at
  /// finish). 0 = only at finish.
  std::size_t rewrite_every = 256;
  /// Minimum seconds between status rewrites (finish always writes).
  double heartbeat_period_s = 1.0;
  /// Durability of both sinks' atomic rewrites. The campaign forwards
  /// its own policy here so "--durability fsync" makes the heartbeat
  /// and the metrics stream power-loss-safe along with the journal.
  util::Durability durability = util::Durability::kFlush;
  /// Shard identity of this runner (campaign layer fills these from
  /// FaultSimOptions). When shard_count > 1 the status heartbeat gains
  /// "shard"/"shard_count" fields and groups_total is shard-local, so a
  /// dispatcher can roll several shard heartbeats into one view.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;  // 0 or 1 = unsharded
};

/// Thread-safe telemetry sink for one campaign run. record() is called
/// once per resolved group (from engine worker threads, under the
/// engine's hook mutex, or from the single-threaded supervisor loop);
/// finish() flushes everything and stamps the terminal state. If the
/// campaign unwinds without reaching finish(), the destructor flushes
/// with state "interrupted" so a crash-adjacent run still leaves
/// complete files behind.
class CampaignTelemetry {
 public:
  CampaignTelemetry(TelemetryOptions options, std::string mode,
                    std::size_t groups_total);
  ~CampaignTelemetry();
  CampaignTelemetry(const CampaignTelemetry&) = delete;
  CampaignTelemetry& operator=(const CampaignTelemetry&) = delete;

  void record(const GroupMetric& m);

  /// Writes all buffered metrics and the final status ("done", or
  /// "interrupted" for a drained campaign). Idempotent; record() must
  /// not be called after.
  void finish(bool interrupted);

  std::size_t records() const;

 private:
  void flush_metrics_locked();
  void write_status_locked(const char* state);

  TelemetryOptions opt_;    // paths cleared when a sink fails (disable)
  const std::string mode_;  // "threads" | "isolate"
  const std::size_t groups_total_;
  const std::chrono::steady_clock::time_point t0_;

  mutable std::mutex mu_;
  std::string lines_;  // every NDJSON line so far, '\n'-terminated
  std::size_t records_ = 0;
  std::size_t unflushed_ = 0;
  std::size_t seeded_ = 0;
  std::size_t timed_out_groups_ = 0;
  std::size_t quarantined_groups_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t detected_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t gates_evaluated_ = 0;
  std::uint64_t sim_cycles_ = 0;
  std::chrono::steady_clock::time_point last_status_;
  bool status_written_ = false;
  bool finished_ = false;
};

}  // namespace sbst::telemetry
