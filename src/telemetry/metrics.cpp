#include "telemetry/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "telemetry/json.h"
#include "util/atomic_file.h"

namespace sbst::telemetry {

namespace {

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool first = false) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                v);
  out += buf;
}

void append_bool(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += v ? "\":true" : "\":false";
}

}  // namespace

std::string metric_to_json(const GroupMetric& m) {
  std::string out = "{";
  append_u64(out, "group", m.group, /*first=*/true);
  append_u64(out, "faults", m.faults);
  append_u64(out, "detected", m.detected);
  out += ",\"engine\":";
  append_json_string(out, m.engine);
  append_bool(out, "seeded", m.seeded);
  append_bool(out, "timed_out", m.timed_out);
  append_bool(out, "quarantined", m.quarantined);
  append_u64(out, "cycles", m.cycles);
  append_u64(out, "gates_evaluated", m.gates_evaluated);
  append_u64(out, "sim_cycles", m.sim_cycles);
  append_u64(out, "evals_and", m.evals_and);
  append_u64(out, "evals_or", m.evals_or);
  append_u64(out, "evals_xor", m.evals_xor);
  append_u64(out, "evals_mux", m.evals_mux);
  append_u64(out, "attempts", m.attempts);
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"duration_ms\":%.3f", m.duration_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"eval_ns_per_gate\":%.3f",
                m.eval_ns_per_gate);
  out += buf;
  append_u64(out, "max_rss_kb", m.max_rss_kb);
  append_u64(out, "cpu_ms", m.cpu_ms);
  out += "}";
  return out;
}

bool metric_from_json(std::string_view line, GroupMetric* out) {
  std::map<std::string, JsonValue> obj;
  if (!parse_flat_json_object(line, &obj)) return false;
  GroupMetric m;
  bool ok = true;
  const auto u64 = [&](const char* key, std::uint64_t* dst) {
    const auto it = obj.find(key);
    if (it == obj.end()) return;
    if (!it->second.u64_valid) ok = false;
    else *dst = it->second.u64;
  };
  const auto u32 = [&](const char* key, std::uint32_t* dst) {
    std::uint64_t v = *dst;
    u64(key, &v);
    if (v > 0xffffffffull) ok = false;
    else *dst = static_cast<std::uint32_t>(v);
  };
  const auto boolean = [&](const char* key, bool* dst) {
    const auto it = obj.find(key);
    if (it == obj.end()) return;
    if (it->second.kind != JsonValue::Kind::kBool) ok = false;
    else *dst = it->second.boolean;
  };
  u64("group", &m.group);
  u32("faults", &m.faults);
  u32("detected", &m.detected);
  if (const auto it = obj.find("engine"); it != obj.end()) {
    if (it->second.kind != JsonValue::Kind::kString) ok = false;
    else m.engine = it->second.str;
  }
  boolean("seeded", &m.seeded);
  boolean("timed_out", &m.timed_out);
  boolean("quarantined", &m.quarantined);
  u64("cycles", &m.cycles);
  u64("gates_evaluated", &m.gates_evaluated);
  u64("sim_cycles", &m.sim_cycles);
  u64("evals_and", &m.evals_and);
  u64("evals_or", &m.evals_or);
  u64("evals_xor", &m.evals_xor);
  u64("evals_mux", &m.evals_mux);
  u32("attempts", &m.attempts);
  if (const auto it = obj.find("duration_ms"); it != obj.end()) {
    if (it->second.kind != JsonValue::Kind::kNumber || it->second.number < 0) {
      ok = false;
    } else {
      m.duration_ms = it->second.number;
    }
  }
  if (const auto it = obj.find("eval_ns_per_gate"); it != obj.end()) {
    if (it->second.kind != JsonValue::Kind::kNumber || it->second.number < 0) {
      ok = false;
    } else {
      m.eval_ns_per_gate = it->second.number;
    }
  }
  u64("max_rss_kb", &m.max_rss_kb);
  u64("cpu_ms", &m.cpu_ms);
  if (!ok || m.faults > 63 || m.detected > m.faults) return false;
  *out = std::move(m);
  return true;
}

double eta_seconds(std::size_t done, std::size_t seeded, std::size_t total,
                   double elapsed_s) {
  const std::size_t fresh = done > seeded ? done - seeded : 0;
  if (fresh < 2 || done > total || elapsed_s < 0) return -1.0;
  return elapsed_s * static_cast<double>(total - done) /
         static_cast<double>(fresh);
}

CampaignTelemetry::CampaignTelemetry(TelemetryOptions options,
                                     std::string mode,
                                     std::size_t groups_total)
    : opt_(std::move(options)),
      mode_(std::move(mode)),
      groups_total_(groups_total),
      t0_(std::chrono::steady_clock::now()),
      // Backdated so the very first record publishes a status file
      // immediately — a dashboard sees the campaign the moment it starts.
      last_status_(t0_ - std::chrono::hours(1)) {}

CampaignTelemetry::~CampaignTelemetry() {
  if (!finished_) finish(/*interrupted=*/true);
}

std::size_t CampaignTelemetry::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void CampaignTelemetry::record(const GroupMetric& m) {
  const std::lock_guard<std::mutex> lock(mu_);
  lines_ += metric_to_json(m);
  lines_ += '\n';
  ++records_;
  ++unflushed_;
  if (m.seeded) ++seeded_;
  if (m.timed_out) ++timed_out_groups_;
  if (m.quarantined) ++quarantined_groups_;
  faults_ += m.faults;
  detected_ += m.detected;
  if (m.attempts > 1) retries_ += m.attempts - 1;
  gates_evaluated_ += m.gates_evaluated;
  sim_cycles_ += m.sim_cycles;

  if (opt_.rewrite_every != 0 && unflushed_ >= opt_.rewrite_every) {
    flush_metrics_locked();
  }
  const double since_status =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    last_status_)
          .count();
  if (since_status >= opt_.heartbeat_period_s) {
    write_status_locked("running");
  }
}

void CampaignTelemetry::finish(bool interrupted) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  flush_metrics_locked();
  write_status_locked(interrupted ? "interrupted" : "done");
}

void CampaignTelemetry::flush_metrics_locked() {
  if (opt_.metrics_path.empty()) return;
  // Telemetry must never take a campaign down: an unwritable sink is
  // reported once and abandoned, the simulation (and its journal, which
  // keeps its own fail-loudly contract) continues.
  try {
    util::write_file_atomic(opt_.metrics_path, lines_, opt_.durability);
    unflushed_ = 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: metrics sink disabled: %s\n", e.what());
    opt_.metrics_path.clear();
  }
}

void CampaignTelemetry::write_status_locked(const char* state) {
  if (opt_.status_path.empty()) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  const double eta = eta_seconds(records_, seeded_, groups_total_, elapsed);

  std::string out = "{\"schema\":\"sbst-campaign-status-v1\"";
  out += ",\"state\":";
  append_json_string(out, state);
  out += ",\"mode\":";
  append_json_string(out, mode_);
  if (opt_.shard_count > 1) {
    append_u64(out, "shard", opt_.shard_index);
    append_u64(out, "shard_count", opt_.shard_count);
  }
  append_u64(out, "groups_total", groups_total_);
  append_u64(out, "groups_done", records_);
  append_u64(out, "groups_seeded", seeded_);
  append_u64(out, "timed_out_groups", timed_out_groups_);
  append_u64(out, "quarantined_groups", quarantined_groups_);
  append_u64(out, "retries", retries_);
  append_u64(out, "faults", faults_);
  append_u64(out, "detected", detected_);
  append_u64(out, "gates_evaluated", gates_evaluated_);
  append_u64(out, "sim_cycles", sim_cycles_);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"elapsed_s\":%.3f", elapsed);
  out += buf;
  if (eta >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"eta_s\":%.3f", eta);
    out += buf;
  } else {
    out += ",\"eta_s\":null";
  }
  out += "}\n";
  try {
    util::write_file_atomic(opt_.status_path, out, opt_.durability);
    last_status_ = std::chrono::steady_clock::now();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: status sink disabled: %s\n", e.what());
    opt_.status_path.clear();
  }
}

}  // namespace sbst::telemetry
