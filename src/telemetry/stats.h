// Offline aggregation of a --metrics NDJSON stream: the `sbst stats`
// subcommand. Reads metric lines (metrics.h schema), folds them into
// one MetricsSummary, and renders it with deterministic `engines:` /
// `verdicts:` / `counters:` lines that CI diffs between a clean and a
// killed-and-resumed campaign — for a pinned engine those lines are
// bit-equal, which is the whole telemetry correctness contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace sbst::telemetry {

struct MetricsSummary {
  std::size_t records = 0;    // well-formed metric lines
  std::size_t malformed = 0;  // lines that failed to parse (blank skipped)
  std::size_t seeded = 0;     // groups replayed from a journal
  std::size_t simulated = 0;  // records - seeded
  std::size_t timed_out_groups = 0;
  std::size_t quarantined_groups = 0;
  std::size_t event_groups = 0;  // per-engine group attribution
  std::size_t sweep_groups = 0;
  std::size_t none_groups = 0;  // never simulated (quarantined/unstarted)
  std::uint64_t faults = 0;
  std::uint64_t detected = 0;
  std::uint64_t retries = 0;  // sum of (attempts - 1) over all groups
  std::uint64_t gates_evaluated = 0;
  std::uint64_t sim_cycles = 0;
  /// Gate evaluations split by compiled base-op class (metrics.h:
  /// GroupMetric::evals_*). Zero on streams that predate the fields.
  std::uint64_t evals_and = 0;
  std::uint64_t evals_or = 0;
  std::uint64_t evals_xor = 0;
  std::uint64_t evals_mux = 0;
  std::uint64_t max_rss_kb = 0;  // peak over groups (dead worker attempts)
  std::uint64_t cpu_ms = 0;      // summed dead-attempt CPU
  /// Wall-clock latency of the groups *simulated* in the recorded run
  /// (seeded groups replay in ~zero time and would poison the
  /// percentiles, so they are excluded).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double total_ms = 0.0;
  /// Aggregate per-evaluation cost of the *simulated* records:
  /// total_ms scaled against their summed gates_evaluated (seeded
  /// records replay in ~zero time, so they are excluded from both the
  /// numerator and the denominator). 0 when nothing was simulated.
  double eval_ns_per_gate = 0.0;
};

/// Nearest-rank percentile (q in (0, 100]) of an ascending-sorted
/// sample; 0.0 for an empty sample.
double percentile_nearest_rank(const std::vector<double>& sorted, double q);

struct GroupMetric;

/// Incremental folder behind summarize_metrics, exposed so the same
/// counter lines can be derived from sources other than an NDJSON
/// stream — `sbst stats --journal` folds a journal's winning records
/// directly, reconstructing the counter aggregates a crash between
/// periodic --metrics rewrites would otherwise have lost.
class MetricsFolder {
 public:
  void fold(const GroupMetric& m);
  void count_malformed();
  /// Sorts the latency sample and returns the finished summary.
  MetricsSummary finish();

 private:
  MetricsSummary summary_;
  std::vector<double> durations_;
  std::uint64_t simulated_gates_ = 0;  // gates_evaluated of non-seeded recs
};

/// Folds every NDJSON line of `in` into a summary. Never throws on bad
/// content — malformed lines are counted, not fatal (callers decide).
MetricsSummary summarize_metrics(std::istream& in);

/// Renders the summary, one labelled line per aspect. The `engines:`,
/// `verdicts:` and `counters:` lines depend only on counter fields.
void print_metrics_summary(std::ostream& os, const MetricsSummary& s);

}  // namespace sbst::telemetry
