// Minimal JSON support for the telemetry subsystem: an escaping string
// writer and a parser for flat objects of scalars — exactly the shape of
// a metrics NDJSON line and of the campaign status file. Deliberately
// not a general JSON library: nested objects and arrays are rejected,
// which keeps the telemetry schema honest (flat, diffable, greppable)
// and the parser small enough to audit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace sbst::telemetry {

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping quotes, backslashes and control characters per RFC 8259.
void append_json_string(std::string& out, std::string_view s);

/// One scalar value in a flat JSON object.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;  // kBool
  /// kNumber: the value as a double, always valid.
  double number = 0.0;
  /// kNumber: exact value when the literal was a plain non-negative
  /// integer that fits in 64 bits. Gate-evaluation counters can exceed
  /// 2^53, where a double silently loses low bits — consumers of
  /// counter fields must read `u64`, not `number`.
  std::uint64_t u64 = 0;
  bool u64_valid = false;
  std::string str;  // kString
};

/// Parses `{"key": scalar, ...}` — strings, numbers, true/false/null.
/// Nested objects/arrays, trailing garbage and duplicate syntax errors
/// all return false (`*out` is then unspecified). Duplicate keys keep
/// the last value, matching every mainstream parser.
bool parse_flat_json_object(std::string_view text,
                            std::map<std::string, JsonValue>* out);

}  // namespace sbst::telemetry
