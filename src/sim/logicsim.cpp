#include "sim/logicsim.h"

namespace sbst::sim {

LogicSim::LogicSim(const nl::Netlist& netlist)
    : LogicSim(netlist, nl::compile(netlist)) {}

LogicSim::LogicSim(const nl::Netlist& netlist,
                   std::shared_ptr<const nl::CompiledNetlist> compiled)
    : nl_(&netlist),
      cn_(std::move(compiled)),
      val_(netlist.size() + 1, 0) {
  for (const nl::Port& p : netlist.outputs()) {
    po_bits_.insert(po_bits_.end(), p.bits.begin(), p.bits.end());
  }
  reset();
}

void LogicSim::reset() {
  for (nl::GateId g = 0; g < nl_->size(); ++g) {
    const nl::Gate& gate = nl_->gate(g);
    switch (gate.kind) {
      case nl::GateKind::kConst0: val_[g] = 0; break;
      case nl::GateKind::kConst1: val_[g] = kAllOnes; break;
      case nl::GateKind::kInput:  val_[g] = 0; break;
      case nl::GateKind::kDff:    val_[g] = broadcast(gate.reset_val); break;
      default: break;
    }
  }
  val_[cn_->zero_slot] = 0;
}

void LogicSim::set_input(const nl::Port& port, std::uint64_t value) {
  for (int i = 0; i < port.width(); ++i) {
    val_[port.bits[static_cast<std::size_t>(i)]] =
        broadcast((value >> i) & 1u);
  }
}

void LogicSim::set_input_word(nl::GateId g, Word w) { val_[g] = w; }

void LogicSim::eval() {
  Word* const v = val_.data();
  for (const nl::CompiledRun& r : cn_->runs) nl::eval_run(*cn_, r, v);
  nl::apply_copies(*cn_, v);
}

void LogicSim::eval_reference() {
  const nl::Netlist& netlist = *nl_;
  Word* const v = val_.data();
  for (nl::GateId g : cn_->lv.comb_order) {
    const nl::Gate& gate = netlist.gate(g);
    v[g] = eval_gate(gate.kind, v[gate.in[0]],
                     gate.in[1] == nl::kNoGate ? 0 : v[gate.in[1]],
                     gate.in[2] == nl::kNoGate ? 0 : v[gate.in[2]]);
  }
}

void LogicSim::step_clock() {
  // Two-phase: sample all D inputs, then update, so DFF->DFF paths see
  // pre-edge values. D is read through the compiled fold root — the
  // same value as the original driver since copies ran in eval().
  thread_local std::vector<Word> next;
  const std::size_t num_dffs = cn_->dff_gate.size();
  next.resize(num_dffs);
  for (std::size_t i = 0; i < num_dffs; ++i) {
    next[i] = val_[cn_->dff_d[i]];
  }
  for (std::size_t i = 0; i < num_dffs; ++i) {
    val_[cn_->dff_gate[i]] = next[i];
  }
}

std::uint64_t LogicSim::read_output(const nl::Port& port, int machine) const {
  std::uint64_t out = 0;
  for (int i = 0; i < port.width(); ++i) {
    const Word w = val_[port.bits[static_cast<std::size_t>(i)]];
    out |= ((w >> machine) & 1u) << i;
  }
  return out;
}

}  // namespace sbst::sim
