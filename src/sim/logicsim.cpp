#include "sim/logicsim.h"

namespace sbst::sim {

LogicSim::LogicSim(const nl::Netlist& netlist)
    : nl_(&netlist), lv_(nl::levelize(netlist)), val_(netlist.size(), 0) {
  for (const nl::Port& p : netlist.outputs()) {
    po_bits_.insert(po_bits_.end(), p.bits.begin(), p.bits.end());
  }
  reset();
}

void LogicSim::reset() {
  for (nl::GateId g = 0; g < nl_->size(); ++g) {
    const nl::Gate& gate = nl_->gate(g);
    switch (gate.kind) {
      case nl::GateKind::kConst0: val_[g] = 0; break;
      case nl::GateKind::kConst1: val_[g] = kAllOnes; break;
      case nl::GateKind::kInput:  val_[g] = 0; break;
      case nl::GateKind::kDff:    val_[g] = broadcast(gate.reset_val); break;
      default: break;
    }
  }
}

void LogicSim::set_input(const nl::Port& port, std::uint64_t value) {
  for (int i = 0; i < port.width(); ++i) {
    val_[port.bits[static_cast<std::size_t>(i)]] =
        broadcast((value >> i) & 1u);
  }
}

void LogicSim::set_input_word(nl::GateId g, Word w) { val_[g] = w; }

void LogicSim::eval() {
  const nl::Netlist& netlist = *nl_;
  Word* const v = val_.data();
  for (nl::GateId g : lv_.comb_order) {
    const nl::Gate& gate = netlist.gate(g);
    v[g] = eval_gate(gate.kind, v[gate.in[0]],
                     gate.in[1] == nl::kNoGate ? 0 : v[gate.in[1]],
                     gate.in[2] == nl::kNoGate ? 0 : v[gate.in[2]]);
  }
}

void LogicSim::step_clock() {
  // Two-phase: sample all D inputs, then update, so DFF->DFF paths see
  // pre-edge values.
  thread_local std::vector<Word> next;
  next.resize(lv_.dffs.size());
  for (std::size_t i = 0; i < lv_.dffs.size(); ++i) {
    next[i] = val_[nl_->gate(lv_.dffs[i]).in[0]];
  }
  for (std::size_t i = 0; i < lv_.dffs.size(); ++i) {
    val_[lv_.dffs[i]] = next[i];
  }
}

std::uint64_t LogicSim::read_output(const nl::Port& port, int machine) const {
  std::uint64_t out = 0;
  for (int i = 0; i < port.width(); ++i) {
    const Word w = val_[port.bits[static_cast<std::size_t>(i)]];
    out |= ((w >> machine) & 1u) << i;
  }
  return out;
}

}  // namespace sbst::sim
