// Levelized compiled-code 2-valued logic simulator.
//
// Each net carries a 64-bit word: the same evaluation kernel serves the
// good-machine simulator (all bits broadcast) and the 64-way parallel
// fault simulator (one machine per bit). Two-valued simulation is sound
// for this project because every DFF elaborated by the DSL has a defined
// reset value and designs are reset before use (enforced by
// Netlist::check + the DSL, see DESIGN.md).
//
// Evaluation runs the compiled SoA program (nl::CompiledNetlist):
// branch-free per-(level, op) runs with folded inversions and BUF
// chains. eval_reference() keeps the original per-gate interpreted
// sweep for differential testing; both produce bit-identical values on
// every net, folded BUFs included.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/compiled.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"

namespace sbst::sim {

using Word = std::uint64_t;
inline constexpr Word kAllOnes = ~Word{0};

/// Broadcasts a single logic bit into a simulation word.
inline Word broadcast(bool b) { return b ? kAllOnes : Word{0}; }

/// Evaluates one gate function over words.
inline Word eval_gate(nl::GateKind k, Word a, Word b, Word c) {
  using nl::GateKind;
  switch (k) {
    case GateKind::kBuf:   return a;
    case GateKind::kNot:   return ~a;
    case GateKind::kAnd2:  return a & b;
    case GateKind::kOr2:   return a | b;
    case GateKind::kNand2: return ~(a & b);
    case GateKind::kNor2:  return ~(a | b);
    case GateKind::kXor2:  return a ^ b;
    case GateKind::kXnor2: return ~(a ^ b);
    case GateKind::kMux2:  return (a & ~c) | (b & c);
    default:               return 0;
  }
}

/// Compiled simulator state for one netlist. Holds a shared compiled
/// program; construction is O(gates) (or O(1) when a pre-compiled
/// program is supplied), evaluation is a flat branch-free sweep.
class LogicSim {
 public:
  explicit LogicSim(const nl::Netlist& netlist);
  /// Reuses a campaign-shared compiled program (must be compiled from
  /// `netlist`) instead of compiling again.
  LogicSim(const nl::Netlist& netlist,
           std::shared_ptr<const nl::CompiledNetlist> compiled);

  const nl::Netlist& netlist() const { return *nl_; }
  const nl::Levelization& levelization() const { return cn_->lv; }
  const nl::CompiledNetlist& compiled() const { return *cn_; }
  const std::shared_ptr<const nl::CompiledNetlist>& compiled_ptr() const {
    return cn_;
  }

  /// Loads DFF reset values and clears inputs.
  void reset();

  /// Drives an input port with a scalar value (broadcast to all machines),
  /// bit i of `value` driving port bit i.
  void set_input(const nl::Port& port, std::uint64_t value);
  /// Drives one net (must be an INPUT gate) with a raw simulation word.
  void set_input_word(nl::GateId g, Word w);

  /// Propagates through the combinational logic (compiled sweep).
  void eval();
  /// Original per-gate interpreted sweep. Bit-identical to eval() on
  /// every net; kept as the differential-testing reference.
  void eval_reference();

  /// Clocks every DFF: state <- D. Call after eval().
  void step_clock();

  /// Raw word on a net (valid after eval()).
  Word word(nl::GateId g) const { return val_[g]; }
  /// Scalar value of an output port in machine `machine` (default: the
  /// good machine convention used by the fault simulator is bit 63; for
  /// pure logic simulation all bits agree).
  std::uint64_t read_output(const nl::Port& port, int machine = 63) const;

  /// Direct access for the fault simulator. The vector holds one word
  /// per gate plus a trailing always-zero slot (CompiledNetlist's
  /// zero_slot) that stands in for unconnected pins.
  std::vector<Word>& values() { return val_; }
  const std::vector<Word>& values() const { return val_; }

  /// All primary-output bits, flattened across ports in declaration
  /// order. Precomputed so per-cycle PO comparisons need not walk the
  /// nested Port structure.
  const std::vector<nl::GateId>& po_bits() const { return po_bits_; }

 private:
  const nl::Netlist* nl_;
  std::shared_ptr<const nl::CompiledNetlist> cn_;
  std::vector<Word> val_;
  std::vector<nl::GateId> po_bits_;
};

}  // namespace sbst::sim
