// Step 3 of the methodology (Figure 4): compact self-test routines per
// component. Each routine is an assembly fragment built around small
// loops applying the library test sets; every response is compacted into
// a running XOR signature that is stored to the result buffer each
// iteration (stores are the observation mechanism — the memory bus is the
// processor's primary output).
//
// Register conventions inside a routine (no cross-routine contract):
//   $30        result-buffer base (reloaded by every routine)
//   $8..$13    scratch / loop counters / signature
// Labels are prefixed with the routine name; operand tables are emitted
// into a separate data section placed after the program's halt.
#pragma once

#include <cstdint>
#include <string>

#include "plasma/cpu.h"

namespace sbst::core {

struct RoutineSpec {
  std::string name;
  plasma::PlasmaComponent target{};
  std::string code;  // executable fragment
  std::string data;  // .word tables, placed after the final halt
};

/// Phase A routines (functional components).
RoutineSpec regfile_routine(std::uint32_t result_buf);
RoutineSpec muldiv_routine(std::uint32_t result_buf);
RoutineSpec alu_routine(std::uint32_t result_buf);
RoutineSpec shifter_routine(std::uint32_t result_buf);

/// Phase B routine: memory controller (the largest / highest-MOFC control
/// component).
RoutineSpec memctrl_routine(std::uint32_t result_buf);

/// Extension routine for the remaining control components (PCL/CTRL):
/// exercises every branch polarity, jumps, links and backward loops.
RoutineSpec control_flow_routine(std::uint32_t result_buf);

/// Routine targeting a given functional/control component.
RoutineSpec routine_for(plasma::PlasmaComponent component,
                        std::uint32_t result_buf);

}  // namespace sbst::core
