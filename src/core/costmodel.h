// Test application time model (§1/§4 of the paper): total test time is
// dominated by downloading the test program from the low-speed external
// tester into on-chip memory; execution happens at processor speed.
#pragma once

#include <cstdint>

namespace sbst::core {

struct TestTimeParams {
  double tester_mhz = 10.0;  // low-cost tester, one word per cycle
  double cpu_mhz = 66.0;     // the paper's synthesized Plasma frequency
};

struct TestTime {
  double download_us = 0.0;
  double execute_us = 0.0;
  double upload_us = 0.0;  // reading back the response signature

  double total_us() const { return download_us + execute_us + upload_us; }
  /// Fraction of total time spent on the tester-speed download.
  double download_fraction() const {
    const double t = total_us();
    return t == 0.0 ? 0.0 : download_us / t;
  }
};

/// words: program+data words downloaded; cycles: execution clock cycles;
/// response_words: signature words read back by the tester.
TestTime test_application_time(std::size_t words, std::uint64_t cycles,
                               std::size_t response_words = 0,
                               const TestTimeParams& params = {});

}  // namespace sbst::core
