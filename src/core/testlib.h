// The "component test set library" (Figure 4): small deterministic test
// sets that exploit the regular structure of datapath components. Each
// set is validated standalone by component-level fault grading in
// tests/core/testlib_test.cpp, mirroring the paper's claim that a small
// library of regular patterns achieves very high structural coverage on
// most component architectures.
#pragma once

#include <cstdint>
#include <vector>

namespace sbst::core {

struct OperandPair {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Operand pairs for the ALU routine. The set combines:
///  - carry-chain patterns for the ripple adder/subtractor
///    (carry-propagate, generate and kill alternations),
///  - minterm-complete backgrounds for the bitwise unit: over the four
///    pairs (0x5,0x3),(0xA,0xC),(0x5,0xC),(0xA,0x3) every bit position
///    sees all four input combinations,
///  - sign/overflow corners for slt/sltu.
std::vector<OperandPair> alu_test_pairs();

/// Immediate values for the I-format ALU ops (andi/ori/xori/addiu/slti/
/// sltiu); applied against complementary register backgrounds.
std::vector<std::uint16_t> alu_imm_patterns();

/// Background words shifted through every amount 0..31 by the shifter
/// routine. Complementary checkerboards toggle every mux path of the
/// logarithmic shifter; the negative value exercises the sra sign fill.
std::vector<std::uint32_t> shifter_backgrounds();

/// Per-stage pattern for the logarithmic shifter's level-k select faults:
/// a word with period 2^(k+1), so bit i and bit i+2^k always differ and a
/// wrong per-bit stage decision is visible for every output bit.
struct ShifterStagePattern {
  int stage = 0;                 // 0..4
  std::uint32_t pattern = 0;     // period 2^(stage+1)
  int amount = 0;                // == 1 << stage
};
std::vector<ShifterStagePattern> shifter_stage_patterns();

/// Register-file background patterns (complementary pair).
std::vector<std::uint32_t> regfile_backgrounds();

/// Address-in-data value for register r (fits an ori immediate, distinct
/// per register): catches read/write decoder addressing faults.
std::uint16_t regfile_address_pattern(int reg);

/// Operand pairs pushed through MULT/MULTU/DIV/DIVU. Corners (0, +-1,
/// INT_MIN, alternating) plus regular patterns that keep the add/sub-shift
/// datapath busy in every one of the 32 iterations.
std::vector<OperandPair> muldiv_test_pairs();

/// Word patterns for the memory-controller routine's lane tests.
std::vector<std::uint32_t> memctrl_patterns();

}  // namespace sbst::core
