#include "core/report.h"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>

namespace sbst::core {

std::string format_percent(double pct, Rounding rounding) {
  // Work in scaled hundredths so the direction of the final rounding is
  // explicit. The epsilon is far below the resolution a coverage ratio
  // can produce (1/total with total in the thousands is ~1e-4 of a
  // percent) but far above the representation error of a double near
  // 100, so it only cancels binary noise — 91.995 parsed as
  // 91.99499999... still floors to 91.99 only when the true decimal
  // value is below 91.995.
  constexpr double kEps = 1e-7;
  const double scaled = pct * 100.0;
  long long hundredths = 0;
  switch (rounding) {
    case Rounding::kNearest:
      hundredths = std::llround(scaled);
      break;
    case Rounding::kDown:
      hundredths = static_cast<long long>(std::floor(scaled + kEps));
      break;
    case Rounding::kUp:
      hundredths = static_cast<long long>(std::ceil(scaled - kEps));
      break;
  }
  char buf[32];
  const char* sign = hundredths < 0 ? "-" : "";
  if (hundredths < 0) hundredths = -hundredths;
  std::snprintf(buf, sizeof(buf), "%s%lld.%02lld%%", sign, hundredths / 100,
                hundredths % 100);
  return buf;
}

namespace {

/// Fault-coverage cell: "97.31%", or "n/a" when no fault of the row was
/// simulated (sampled runs) — printing 100% there reads as perfect
/// coverage of an untested component. Rows containing timed-out
/// (inconclusive) faults render as ">=x%": the true coverage cannot be
/// lower, and folding inconclusive faults into "undetected" silently
/// would understate the campaign without saying so. Bounds round
/// towards the safe side (format_percent): a ">=" cell floors so the
/// printed figure never exceeds what the campaign proved.
std::string fc_cell(const fault::Coverage& c) {
  if (!c.defined()) return "n/a";
  if (c.is_lower_bound()) {
    return ">=" + format_percent(c.percent(), Rounding::kDown);
  }
  return format_percent(c.percent(), Rounding::kNearest);
}

std::string mofc_cell(const fault::Coverage& c, double mofc) {
  if (!c.defined()) return "n/a";
  // Symmetrically, missed coverage over inconclusive faults is an upper
  // bound, and ceils.
  if (c.is_lower_bound()) {
    return "<=" + format_percent(mofc, Rounding::kUp);
  }
  return format_percent(mofc, Rounding::kNearest);
}

}  // namespace

CoverageReport make_coverage_report(const plasma::PlasmaCpu& cpu,
                                    const nl::FaultList& faults,
                                    const fault::FaultSimResult& result) {
  CoverageReport rep;
  rep.overall = fault::overall_coverage(faults, result);
  const std::vector<fault::Coverage> per_comp =
      fault::component_coverage(cpu.netlist, faults, result);
  const std::vector<ComponentInfo> classified = classify_plasma(cpu);

  for (const ComponentInfo& info : classified) {
    ComponentCoverageRow row;
    row.name = info.name;
    row.cls = info.cls;
    row.coverage = per_comp[cpu.component_id(info.component)];
    row.mofc = rep.overall.total == 0
                   ? 0.0
                   : 100.0 *
                         static_cast<double>(row.coverage.total -
                                             row.coverage.detected) /
                         static_cast<double>(rep.overall.total);
    rep.rows.push_back(std::move(row));
  }
  return rep;
}

void print_coverage_table(std::ostream& os, const CoverageReport& phase_a,
                          const CoverageReport* phase_ab) {
  os << std::fixed;
  os << "Component   Class        Phase A FC    MOFC";
  if (phase_ab) os << "     Phase A+B FC    MOFC";
  os << "\n";
  for (std::size_t i = 0; i < phase_a.rows.size(); ++i) {
    const ComponentCoverageRow& a = phase_a.rows[i];
    os << std::left << std::setw(12) << a.name << std::setw(13)
       << component_class_name(a.cls) << std::right << std::setw(10)
       << fc_cell(a.coverage) << std::setw(9)
       << mofc_cell(a.coverage, a.mofc);
    if (phase_ab) {
      const ComponentCoverageRow& b = phase_ab->rows[i];
      os << std::setw(14) << fc_cell(b.coverage) << std::setw(9)
         << mofc_cell(b.coverage, b.mofc);
    }
    os << "\n";
  }
  os << std::left << std::setw(25) << "Processor overall" << std::right
     << std::setw(10) << fc_cell(phase_a.overall) << std::setw(8) << " ";
  if (phase_ab) {
    os << std::setw(14) << fc_cell(phase_ab->overall);
  }
  os << "\n";
  auto inconclusive_note = [&os](const char* phase,
                                 const CoverageReport& rep) {
    const fault::Coverage& c = rep.overall;
    if (!c.is_lower_bound()) return;
    os << "note: " << phase;
    if (c.timed_out != 0) {
      os << c.timed_out << " of " << c.total
         << " faults timed out before a verdict";
    }
    if (c.timed_out != 0 && c.quarantined != 0) os << " and ";
    if (c.quarantined != 0) {
      os << c.quarantined << " of " << c.total
         << " faults were quarantined (their isolated worker died on "
            "every attempt)";
    }
    os << "; coverage above is a lower bound (re-run with a larger "
          "timeout or --retry-timeouts to resolve them)\n";
  };
  inconclusive_note(phase_ab ? "phase A: " : "", phase_a);
  if (phase_ab) inconclusive_note("phase A+B: ", *phase_ab);
}

}  // namespace sbst::core
