#include "core/classify.h"

#include <algorithm>

#include "netlist/cost.h"

namespace sbst::core {

std::string_view component_class_name(ComponentClass c) {
  switch (c) {
    case ComponentClass::kFunctional: return "Functional";
    case ComponentClass::kControl:    return "Control";
    case ComponentClass::kHidden:     return "Hidden";
    case ComponentClass::kGlue:       return "Glue";
  }
  return "?";
}

std::string_view access_level_name(AccessLevel a) {
  switch (a) {
    case AccessLevel::kHigh:   return "High";
    case AccessLevel::kMedium: return "Medium";
    case AccessLevel::kLow:    return "Low";
  }
  return "?";
}

std::vector<ClassProperties> class_priority_table() {
  return {
      {ComponentClass::kFunctional, AccessLevel::kHigh, AccessLevel::kHigh},
      {ComponentClass::kControl, AccessLevel::kMedium, AccessLevel::kMedium},
      {ComponentClass::kHidden, AccessLevel::kLow, AccessLevel::kLow},
  };
}

AccessLevel ComponentInfo::access() const {
  switch (cls) {
    case ComponentClass::kFunctional: return AccessLevel::kHigh;
    case ComponentClass::kControl:    return AccessLevel::kMedium;
    default:                          return AccessLevel::kLow;
  }
}

namespace {

using plasma::PlasmaComponent;

ComponentClass plasma_class(PlasmaComponent c) {
  switch (c) {
    case PlasmaComponent::kRegF:
    case PlasmaComponent::kMulD:
    case PlasmaComponent::kAlu:
    case PlasmaComponent::kBsh:
      return ComponentClass::kFunctional;
    case PlasmaComponent::kMctrl:
    case PlasmaComponent::kPcl:
    case PlasmaComponent::kCtrl:
    case PlasmaComponent::kBmux:
      return ComponentClass::kControl;
    case PlasmaComponent::kPln:
      return ComponentClass::kHidden;
    case PlasmaComponent::kGl:
      return ComponentClass::kGlue;
  }
  return ComponentClass::kGlue;
}

/// Shortest instruction sequences per the paper's §2.2 definitions,
/// modelled statically for the Plasma ISA:
///  - RegF: ori writes any pattern (1); sw exposes it (1).
///  - MulD: mult applies operands (1); mflo + sw exposes results (2).
///  - ALU/BSH: one register op applies a pattern (1); sw exposes (1).
///  - MCTRL: a load/store applies data patterns directly (1), but control
///    inputs (size/lane selects) need specific opcodes around it (2-3).
///  - PCL: branches/jumps drive it (2 incl. condition setup); the fetch
///    address is a primary output (1).
///  - CTRL/BMUX: driven only indirectly through opcode encodings (3);
///    observed through whichever datapath result they steer (2-3).
///  - PLN: no instruction addresses pipeline registers; only multi-
///    instruction scenarios (pause, bubbles) exercise them (6).
struct AccessModel {
  int c;
  int o;
};

AccessModel access_model(PlasmaComponent c) {
  switch (c) {
    case PlasmaComponent::kRegF:  return {1, 1};
    case PlasmaComponent::kMulD:  return {1, 2};
    case PlasmaComponent::kAlu:   return {1, 1};
    case PlasmaComponent::kBsh:   return {1, 1};
    case PlasmaComponent::kMctrl: return {2, 2};
    case PlasmaComponent::kPcl:   return {2, 1};
    case PlasmaComponent::kCtrl:  return {3, 3};
    case PlasmaComponent::kBmux:  return {3, 3};
    case PlasmaComponent::kPln:   return {6, 6};
    case PlasmaComponent::kGl:    return {4, 4};
  }
  return {0, 0};
}

int class_rank(ComponentClass c) {
  switch (c) {
    case ComponentClass::kFunctional: return 0;
    case ComponentClass::kControl:    return 1;
    case ComponentClass::kHidden:     return 2;
    case ComponentClass::kGlue:       return 3;
  }
  return 3;
}

}  // namespace

std::vector<ComponentInfo> classify_plasma(const plasma::PlasmaCpu& cpu) {
  const nl::CostReport cost = nl::compute_cost(cpu.netlist);
  std::vector<ComponentInfo> out;
  out.reserve(plasma::kNumPlasmaComponents);
  for (int i = 0; i < plasma::kNumPlasmaComponents; ++i) {
    const auto pc = static_cast<PlasmaComponent>(i);
    ComponentInfo info;
    info.component = pc;
    info.name = std::string(plasma::plasma_component_name(pc));
    info.cls = plasma_class(pc);
    info.nand2 = cost.components[cpu.component_id(pc)].nand2_equiv;
    const AccessModel am = access_model(pc);
    info.controllability_len = am.c;
    info.observability_len = am.o;
    out.push_back(std::move(info));
  }
  return out;
}

void sort_by_test_priority(std::vector<ComponentInfo>& components) {
  std::stable_sort(components.begin(), components.end(),
                   [](const ComponentInfo& a, const ComponentInfo& b) {
                     const int ra = class_rank(a.cls);
                     const int rb = class_rank(b.cls);
                     if (ra != rb) return ra < rb;
                     return a.nand2 > b.nand2;
                   });
}

std::vector<ComponentInfo> components_of_class(
    const std::vector<ComponentInfo>& all, ComponentClass cls) {
  std::vector<ComponentInfo> out;
  for (const ComponentInfo& c : all) {
    if (c.cls == cls) out.push_back(c);
  }
  sort_by_test_priority(out);
  return out;
}

}  // namespace sbst::core
