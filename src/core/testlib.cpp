#include "core/testlib.h"

namespace sbst::core {

std::vector<OperandPair> alu_test_pairs() {
  return {
      // carry chains: full propagate, generate at bit 0, kill everywhere
      {0x00000000u, 0x00000000u},
      {0xFFFFFFFFu, 0x00000001u},
      {0xFFFFFFFFu, 0xFFFFFFFFu},
      {0x00000001u, 0xFFFFFFFFu},
      // alternating generate/propagate
      {0x55555555u, 0x55555555u},
      {0xAAAAAAAAu, 0xAAAAAAAAu},
      {0x33333333u, 0x33333333u},
      {0xCCCCCCCCu, 0xCCCCCCCCu},
      // minterm-complete logic backgrounds
      {0x55555555u, 0x33333333u},
      {0xAAAAAAAAu, 0xCCCCCCCCu},
      {0x55555555u, 0xCCCCCCCCu},
      {0xAAAAAAAAu, 0x33333333u},
      // sign / overflow corners for slt, sltu and sub
      {0x80000000u, 0x7FFFFFFFu},
      {0x7FFFFFFFu, 0x80000000u},
      {0x80000000u, 0xFFFFFFFFu},
      {0x0F0F0F0Fu, 0xF0F0F0F0u},
  };
}

std::vector<std::uint16_t> alu_imm_patterns() {
  return {0x5555u, 0xAAAAu, 0xFFFFu, 0x0001u, 0x8000u};
}

std::vector<std::uint32_t> shifter_backgrounds() {
  return {0x55555555u, 0xAAAAAAAAu};
}

std::vector<ShifterStagePattern> shifter_stage_patterns() {
  return {
      {0, 0x55555555u, 1},
      {1, 0x33333333u, 2},
      {2, 0x0F0F0F0Fu, 4},
      {3, 0x00FF00FFu, 8},
      {4, 0x0000FFFFu, 16},
  };
}

std::vector<std::uint32_t> regfile_backgrounds() {
  return {0x55555555u, 0xAAAAAAAAu};
}

std::uint16_t regfile_address_pattern(int reg) {
  // r | r<<5 | r<<10: distinct per register, fits 15 bits, and differs
  // from its own complemented-address variants in several positions.
  const unsigned r = static_cast<unsigned>(reg) & 31u;
  return static_cast<std::uint16_t>(r | (r << 5) | (r << 10));
}

std::vector<OperandPair> muldiv_test_pairs() {
  return {
      {0x00000000u, 0x00000000u},  // also divide-by-zero path
      {0x00000001u, 0xFFFFFFFFu},
      {0xFFFFFFFFu, 0xFFFFFFFFu},
      {0x80000000u, 0x7FFFFFFFu},  // INT_MIN rectification
      {0x55555555u, 0xAAAAAAAAu},  // alternating add/skip iterations
      {0x0000FFFFu, 0xFFFF0000u},
      {0x12345678u, 0x9ABCDEF0u},
      {0x00010001u, 0x0000FFFEu},
      {0x7FFFFFFFu, 0x00000002u},
      {0xDEADBEEFu, 0x00000007u},
  };
}

std::vector<std::uint32_t> memctrl_patterns() {
  return {0xC3A55A3Cu, 0x80FF7F01u, 0x00000000u, 0xFFFFFFFFu};
}

}  // namespace sbst::core
