// Step 1+2 of the paper's methodology (Figure 2): classification of
// processor components into functional / control / hidden classes, and
// ordering by test priority (class first, then descending relative size;
// the controllability/observability metrics justify the class ranking —
// Table 1).
#pragma once

#include <string>
#include <vector>

#include "plasma/cpu.h"

namespace sbst::core {

enum class ComponentClass { kFunctional, kControl, kHidden, kGlue };

std::string_view component_class_name(ComponentClass c);

/// Table 1's qualitative accessibility level.
enum class AccessLevel { kHigh, kMedium, kLow };

std::string_view access_level_name(AccessLevel a);

/// Class-level properties from the paper's Table 1.
struct ClassProperties {
  ComponentClass cls;
  AccessLevel controllability_observability;
  AccessLevel test_priority;
};

/// The three rows of Table 1 (glue logic is not a class of its own).
std::vector<ClassProperties> class_priority_table();

struct ComponentInfo {
  plasma::PlasmaComponent component{};
  std::string name;
  ComponentClass cls = ComponentClass::kGlue;
  double nand2 = 0.0;  // measured size from the elaborated netlist

  /// Paper §2.2 metrics: length (in instructions) of the shortest
  /// sequence that applies a pattern to the component's inputs /
  /// propagates its outputs to the processor primary outputs. Encoded as
  /// a static model of the Plasma ISA (see classify.cpp).
  int controllability_len = 0;
  int observability_len = 0;

  AccessLevel access() const;
};

/// Classifies the Plasma components (Table 2) and attaches measured
/// NAND2-equivalent sizes (Table 3).
std::vector<ComponentInfo> classify_plasma(const plasma::PlasmaCpu& cpu);

/// Sorts in test-priority order: functional before control before hidden
/// (before glue), descending size within a class. This is the order test
/// routines are developed in (Figure 3 phases).
void sort_by_test_priority(std::vector<ComponentInfo>& components);

/// Components of one class, already priority-sorted.
std::vector<ComponentInfo> components_of_class(
    const std::vector<ComponentInfo>& all, ComponentClass cls);

}  // namespace sbst::core
