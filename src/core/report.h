// Coverage reporting in the paper's Table 5 format: per-component fault
// coverage (FC) and missed overall fault coverage (MOFC — the share of
// the processor's total faults left undetected inside that component).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/classify.h"
#include "fault/faultsim.h"
#include "netlist/fault.h"
#include "plasma/cpu.h"

namespace sbst::core {

struct ComponentCoverageRow {
  std::string name;
  ComponentClass cls = ComponentClass::kGlue;
  fault::Coverage coverage;
  double mofc = 0.0;  // 100 * undetected_in_component / total_processor
};

struct CoverageReport {
  std::vector<ComponentCoverageRow> rows;  // Table 2/3 component order
  fault::Coverage overall;
};

CoverageReport make_coverage_report(const plasma::PlasmaCpu& cpu,
                                    const nl::FaultList& faults,
                                    const fault::FaultSimResult& result);

/// How a percentage is rounded to the two printed decimals.
enum class Rounding {
  kNearest,  // plain values: round half away from zero
  kDown,     // ">=" lower bounds: floor, so the printed bound stays true
  kUp,       // "<=" upper bounds: ceil, symmetrically
};

/// Renders `pct` as "12.34%" with directed rounding. A ">=91.996%"
/// coverage must print as ">=91.99%", not ">=92.00%" — round-to-nearest
/// on a bound manufactures a guarantee the campaign never made. An
/// epsilon absorbs binary representation error (e.g. 91.995 stored as
/// 91.99499999...) so exactly-representable-in-decimal inputs are not
/// nudged across a hundredth.
std::string format_percent(double pct, Rounding rounding);

/// Prints one or two phases side by side in the Table 5 layout.
void print_coverage_table(std::ostream& os, const CoverageReport& phase_a,
                          const CoverageReport* phase_ab);

}  // namespace sbst::core
