#include "core/routines.h"

#include <cstdio>
#include <stdexcept>

#include "core/testlib.h"

namespace sbst::core {

namespace {

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08X", v);
  return buf;
}

std::string dec(std::uint32_t v) { return std::to_string(v); }

}  // namespace

RoutineSpec regfile_routine(std::uint32_t buf) {
  // March-inspired: write a background into every register, read all of
  // them back through BOTH read ports — stores read through the rt port,
  // an xor-accumulation chain reads through the rs port; repeat with the
  // complement using a different pointer register so the pointer
  // registers themselves get tested; finish with an address-in-data pass
  // that detects read/write decoder faults.
  const auto bg = regfile_backgrounds();
  std::string s;
  s += "# --- RegF: register file march + address-in-data ---\n";

  // Reads every pass register through the rs port (xor rd, rs, rt) and
  // stores the accumulated signature.
  auto rs_port_read = [&s](int lo, int hi, int skip, const char* ptr,
                           int off) {
    s += "addu $12, $0, $0\n";  // clear accumulator (also reads $0)
    for (int r = lo; r <= hi; ++r) {
      if (r == skip || r == 12) continue;
      s += "xor $12, $" + dec(r) + ", $12\n";
    }
    s += std::string("sw $12, ") + dec(off) + "(" + ptr + ")\n";
  };

  // Pass A: pointer $30, background bg[0] in $1..$29,$31.
  s += "li $30, " + hex(buf) + "\n";
  s += "li $1, " + hex(bg[0]) + "\n";
  for (int r = 2; r <= 31; ++r) {
    if (r == 30) continue;
    s += "move $" + dec(r) + ", $1\n";
  }
  int off = 0;
  for (int r = 1; r <= 31; ++r) {
    if (r == 30) continue;
    s += "sw $" + dec(r) + ", " + dec(off) + "($30)\n";
    off += 4;
  }
  rs_port_read(1, 31, 30, "$30", off);

  // Pass B: pointer $1, complement background in $2..$31.
  s += "li $1, " + hex(buf + 160) + "\n";
  s += "li $2, " + hex(bg[1]) + "\n";
  for (int r = 3; r <= 31; ++r) {
    s += "move $" + dec(r) + ", $2\n";
  }
  off = 0;
  for (int r = 2; r <= 31; ++r) {
    s += "sw $" + dec(r) + ", " + dec(off) + "($1)\n";
    off += 4;
  }
  rs_port_read(2, 31, 1, "$1", off);

  // Pass C: address-in-data, pointer $30.
  s += "li $30, " + hex(buf + 320) + "\n";
  off = 0;
  for (int r = 1; r <= 31; ++r) {
    if (r == 30) continue;
    s += "ori $" + dec(r) + ", $0, " + hex(regfile_address_pattern(r)) + "\n";
  }
  for (int r = 1; r <= 31; ++r) {
    if (r == 30) continue;
    s += "sw $" + dec(r) + ", " + dec(off) + "($30)\n";
    off += 4;
  }
  // rs-port read-decoder check: per-register signature stores (an
  // xor chain would mask aliased pairs of decoder faults).
  for (int r = 1; r <= 31; ++r) {
    if (r == 30) continue;
    s += "addiu $12, $" + dec(r) + ", 0\n";  // rs-port read of $r
    s += "sw $12, " + dec(off) + "($30)\n";
    off += 4;
  }

  // Pass E: parity-complement backgrounds. Registers with odd index
  // parity get 0x0000FFFF, even parity 0xFFFF0000: two registers whose
  // indices differ in any single bit hold complementary words, so every
  // read-mux select fault produces a full-width difference at whichever
  // tree level it sits. Individual stores (no xor chain) prevent the
  // pairwise cancellation a compacted read would suffer.
  s += "li $30, " + hex(buf + 640) + "\n";
  off = 0;
  // Descending write order: combined with pass C's ascending order this
  // catches spurious write-enable (decoder) faults in both directions.
  for (int r = 31; r >= 1; --r) {
    if (r == 30) continue;
    const bool odd = __builtin_parity(static_cast<unsigned>(r)) != 0;
    s += odd ? ("ori $" + dec(r) + ", $0, 0xFFFF\n")
             : ("lui $" + dec(r) + ", 0xFFFF\n");
  }
  for (int r = 1; r <= 31; ++r) {
    if (r == 30) continue;
    s += "sw $" + dec(r) + ", " + dec(off) + "($30)\n";
    off += 4;
  }
  for (int r = 1; r <= 31; ++r) {
    if (r == 30) continue;
    s += "addiu $12, $" + dec(r) + ", 0\n";  // rs-port read of $r
    s += "sw $12, " + dec(off) + "($30)\n";
    off += 4;
  }
  // $30 itself with both parity values, via pointer $2.
  s += "li $2, " + hex(buf + 1000) + "\n";
  s += "lui $30, 0xFFFF\n";
  s += "sw $30, 0($2)\n";
  s += "ori $30, $0, 0xFFFF\n";
  s += "sw $30, 4($2)\n";

  // Pass D: cover the cells the pointer roles shadowed ($30 never saw
  // bg[0], $1 never saw bg[1]).
  s += "li $2, " + hex(buf + 576) + "\n";
  s += "li $30, " + hex(bg[0]) + "\n";
  s += "sw $30, 0($2)\n";
  s += "li $30, " + hex(bg[1]) + "\n";
  s += "sw $30, 4($2)\n";
  s += "addiu $12, $30, 0\n";  // rs-port read of $30
  s += "sw $12, 8($2)\n";
  s += "li $1, " + hex(bg[1]) + "\n";
  s += "sw $1, 12($2)\n";
  s += "addiu $12, $1, 0\n";   // rs-port read of $1
  s += "sw $12, 16($2)\n";
  s += "lui $1, 0xFFFF\n";     // complement of $1's parity-pass value
  s += "sw $1, 20($2)\n";
  s += "addiu $12, $1, 0\n";
  s += "sw $12, 24($2)\n";
  s += "ori $30, $0, " + hex(regfile_address_pattern(30)) + "\n";
  s += "sw $30, 28($2)\n";
  s += "addiu $12, $30, 0\n";
  s += "sw $12, 32($2)\n";

  return RoutineSpec{"regf", plasma::PlasmaComponent::kRegF, std::move(s), ""};
}

RoutineSpec alu_routine(std::uint32_t buf) {
  const auto pairs = alu_test_pairs();
  std::string s;
  s += "# --- ALU: deterministic operand pairs through every operation ---\n";
  s += "li $30, " + hex(buf) + "\n";
  s += "la $8, Lalu_tab\n";
  s += "li $9, " + dec(static_cast<std::uint32_t>(pairs.size())) + "\n";
  s += "li $13, 0\n";
  s += "Lalu_loop:\n";
  s += "lw $10, 0($8)\n";
  s += "lw $11, 4($8)\n";
  // Each result is stored individually: XOR compaction would alias
  // correlated responses (add/addu produce identical words, so a common
  // fault effect cancels out of an XOR chain).
  {
    int slot = 0;
    for (const char* op : {"addu", "subu", "and", "or", "xor", "nor", "slt",
                           "sltu", "add", "sub"}) {
      s += std::string(op) + " $12, $10, $11\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(4 * slot++)) +
           "($30)\n";
    }
  }
  s += "addiu $8, $8, 8\n";
  s += "addiu $9, $9, -1\n";
  s += "bne $9, $0, Lalu_loop\n";
  s += "nop\n";

  // Immediate-format operations against complementary backgrounds.
  s += "li $10, " + hex(0x5A5AA5A5u) + "\n";
  s += "li $11, " + hex(0xA5A55A5Au) + "\n";
  int off = 40;
  for (const std::uint16_t imm : alu_imm_patterns()) {
    const std::string i = hex(imm);
    const std::string si =
        dec(static_cast<std::uint32_t>(static_cast<std::int16_t>(imm) >= 0
                                           ? imm
                                           : 0x7FFF & imm));
    for (const std::string& stmt :
         {"andi $12, $10, " + i, "ori  $12, $11, " + i,
          "xori $12, $10, " + i, "addiu $12, $11, " + si,
          "slti $12, $10, " + si, "sltiu $12, $11, " + si}) {
      s += stmt + "\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
      off += 4;
    }
  }
  s += "lui $12, 0xA53C\n";
  s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
  off += 4;
  s += "lui $12, 0x5AC3\n";
  s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";

  std::string data = "Lalu_tab:\n";
  for (const OperandPair& p : pairs) {
    data += ".word " + hex(p.a) + ", " + hex(p.b) + "\n";
  }
  return RoutineSpec{"alu", plasma::PlasmaComponent::kAlu, std::move(s),
                     std::move(data)};
}

RoutineSpec shifter_routine(std::uint32_t buf) {
  const auto bgs = shifter_backgrounds();
  std::string s;
  s += "# --- BSH: all 32 amounts x {sll,srl,sra} x backgrounds ---\n";
  s += "li $30, " + hex(buf) + "\n";
  s += "li $8, 0\n";
  s += "li $9, 32\n";
  s += "li $10, " + hex(bgs[0]) + "\n";
  s += "li $11, " + hex(bgs[1]) + "\n";
  s += "li $13, 0\n";
  s += "Lbsh_loop:\n";
  // Per-op result slots (an XOR chain aliases: at amount 0 all three
  // shift flavours return the operand unchanged and fault effects cancel
  // pairwise).
  {
    int slot = 0;
    for (const char* op : {"sllv", "srlv", "srav"}) {
      s += std::string(op) + " $12, $10, $8\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(4 * slot++)) +
           "($30)\n";
      s += std::string(op) + " $12, $11, $8\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(4 * slot++)) +
           "($30)\n";
    }
  }
  s += "addiu $8, $8, 1\n";
  s += "bne $8, $9, Lbsh_loop\n";
  s += "nop\n";
  // Constant-shamt forms (exercise the shamt-field path of the amount
  // mux).
  int off = 24;
  for (const char* op : {"sll", "srl", "sra"}) {
    for (const int amt : {1, 7, 13, 31}) {
      s += std::string(op) + " $12, $10, " +
           dec(static_cast<std::uint32_t>(amt)) + "\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
      off += 4;
      s += std::string(op) + " $12, $11, " +
           dec(static_cast<std::uint32_t>(amt)) + "\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
      off += 4;
    }
  }
  // Stage-select block: for each shifter level k, a pattern with period
  // 2^(k+1) shifted by exactly 2^k (select stuck-at-0 visible) and by 0
  // (select stuck-at-1 visible). See testlib.h.
  for (const ShifterStagePattern& sp : shifter_stage_patterns()) {
    s += "li $10, " + hex(sp.pattern) + "\n";
    for (const char* op : {"sll", "srl", "sra"}) {
      s += std::string(op) + " $12, $10, " +
           dec(static_cast<std::uint32_t>(sp.amount)) + "\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
      off += 4;
    }
    s += "srl $12, $10, 0\n";
    s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
    off += 4;
    // Variable-amount flavour of the same stage.
    s += "li $8, " + dec(static_cast<std::uint32_t>(sp.amount)) + "\n";
    s += "srlv $12, $10, $8\n";
    s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
    off += 4;
  }

  return RoutineSpec{"bsh", plasma::PlasmaComponent::kBsh, std::move(s), ""};
}

RoutineSpec muldiv_routine(std::uint32_t buf) {
  const auto pairs = muldiv_test_pairs();
  std::string s;
  s += "# --- MulD: corner operands through mult/multu/div/divu ---\n";
  s += "li $30, " + hex(buf) + "\n";
  s += "la $8, Lmd_tab\n";
  s += "li $9, " + dec(static_cast<std::uint32_t>(pairs.size())) + "\n";
  s += "li $13, 0\n";
  s += "Lmd_loop:\n";
  s += "lw $10, 0($8)\n";
  s += "lw $11, 4($8)\n";
  // Individual result slots: mult and multu agree on non-negative
  // operands, so a shared XOR signature would cancel common fault
  // effects.
  {
    int slot = 0;
    for (const char* op : {"mult", "multu", "div", "divu"}) {
      s += std::string(op) + " $10, $11\n";
      s += "mflo $12\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(4 * slot++)) +
           "($30)\n";
      s += "mfhi $12\n";
      s += "sw $12, " + dec(static_cast<std::uint32_t>(4 * slot++)) +
           "($30)\n";
    }
  }
  s += "addiu $8, $8, 8\n";
  s += "addiu $9, $9, -1\n";
  s += "bne $9, $0, Lmd_loop\n";
  s += "nop\n";
  // Direct HI/LO register access.
  s += "li $10, " + hex(0x0F0F0F0Fu) + "\n";
  s += "mthi $10\n";
  s += "li $11, " + hex(0xF0C33C0Fu) + "\n";
  s += "mtlo $11\n";
  s += "mfhi $12\n";
  s += "sw $12, 32($30)\n";
  s += "mflo $12\n";
  s += "sw $12, 36($30)\n";
  // Signed corners: negative operands with long trailing-zero runs drive
  // the full carry chains of the operand-rectification and sign-fix
  // incrementers (abs at issue, 64-bit product / quotient / remainder
  // negation at completion).
  {
    int off = 40;
    const OperandPair signed_corners[] = {
        // |q| = 0x40000000 and |product| = 2^32: 30+ bit carry chains in
        // the quotient/product negators.
        {0x80000000u, 0x00000002u},
        // remainder 0x10000 with sign(a)=1: 16-bit chain in the
        // remainder negator.
        {0xFFFF0000u, 0x00010001u},
    };
    for (const OperandPair& p : signed_corners) {
      s += "li $10, " + hex(p.a) + "\n";
      s += "li $11, " + hex(p.b) + "\n";
      for (const char* op : {"mult", "div"}) {
        s += std::string(op) + " $10, $11\n";
        s += "mflo $12\n";
        s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
        off += 4;
        s += "mfhi $12\n";
        s += "sw $12, " + dec(static_cast<std::uint32_t>(off)) + "($30)\n";
        off += 4;
      }
    }
  }

  std::string data = "Lmd_tab:\n";
  for (const OperandPair& p : pairs) {
    data += ".word " + hex(p.a) + ", " + hex(p.b) + "\n";
  }
  return RoutineSpec{"muld", plasma::PlasmaComponent::kMulD, std::move(s),
                     std::move(data)};
}

RoutineSpec memctrl_routine(std::uint32_t buf) {
  const auto pats = memctrl_patterns();
  std::string s;
  s += "# --- MCTRL: byte/half lanes, sign extension, address walk ---\n";
  s += "li $30, " + hex(buf) + "\n";
  s += "li $13, 0\n";
  // Store-lane tests: distinct byte per lane, distinct half per lane.
  s += "li $9, " + hex(pats[0]) + "\n";
  s += "sw $9, 0($30)\n";
  int v = 0x11;
  for (int lane = 0; lane < 4; ++lane) {
    s += "li $9, " + hex(static_cast<std::uint32_t>(v)) + "\n";
    s += "sb $9, " + dec(static_cast<std::uint32_t>(4 + lane)) + "($30)\n";
    v += 0x33;
  }
  s += "li $9, " + hex(0x5AA5u) + "\n";
  s += "sh $9, 8($30)\n";
  s += "li $9, " + hex(0xC33Cu) + "\n";
  s += "sh $9, 10($30)\n";
  // Read everything back word-wise (exposes the stored lanes on the bus).
  for (int w = 0; w < 3; ++w) {
    s += "lw $10, " + dec(static_cast<std::uint32_t>(4 * w)) + "($30)\n";
    s += "xor $13, $13, $10\n";
  }
  // Load-lane tests: a word with mixed sign bytes, read through every
  // flavour of load.
  s += "li $9, " + hex(pats[1]) + "\n";  // 0x80FF7F01
  s += "sw $9, 12($30)\n";
  {
    int slot = 0;  // individual stores: lb/lbu agree on positive bytes
    for (const char* op : {"lb", "lbu"}) {
      for (int lane = 0; lane < 4; ++lane) {
        s += std::string(op) + " $10, " +
             dec(static_cast<std::uint32_t>(12 + lane)) + "($30)\n";
        s += "sw $10, " + dec(static_cast<std::uint32_t>(320 + 4 * slot++)) +
             "($30)\n";
      }
    }
    for (const char* op : {"lh", "lhu"}) {
      for (int lane = 0; lane < 4; lane += 2) {
        s += std::string(op) + " $10, " +
             dec(static_cast<std::uint32_t>(12 + lane)) + "($30)\n";
        s += "sw $10, " + dec(static_cast<std::uint32_t>(320 + 4 * slot++)) +
             "($30)\n";
      }
    }
    s += "lw $10, 12($30)\n";
    s += "sw $10, " + dec(static_cast<std::uint32_t>(320 + 4 * slot++)) +
         "($30)\n";
  }
  // Address walk: markers at power-of-two offsets, read back.
  int marker = 1;
  for (const int step : {32, 64, 128, 256}) {
    s += "li $9, " + dec(static_cast<std::uint32_t>(marker)) + "\n";
    s += "sw $9, " + dec(static_cast<std::uint32_t>(step)) + "($30)\n";
    marker <<= 3;
  }
  for (const int step : {32, 64, 128, 256}) {
    s += "lw $10, " + dec(static_cast<std::uint32_t>(step)) + "($30)\n";
    s += "xor $13, $13, $10\n";
  }
  // Negative-offset addressing.
  s += "li $8, " + hex(buf + 512) + "\n";
  s += "li $9, " + hex(0x7E57DA7Au) + "\n";
  s += "sw $9, -4($8)\n";
  s += "lw $10, -4($8)\n";
  s += "xor $13, $13, $10\n";
  s += "sw $13, 20($30)\n";
  return RoutineSpec{"mctrl", plasma::PlasmaComponent::kMctrl, std::move(s),
                     ""};
}

RoutineSpec control_flow_routine(std::uint32_t buf) {
  std::string s;
  s += "# --- CTRL/PCL: every branch polarity, jumps, links ---\n";
  s += "li $30, " + hex(buf) + "\n";
  s += "li $13, 0\n";
  s += "li $8, -1\n";
  s += "li $9, 1\n";
  int marker = 1;
  auto taken_pair = [&](const std::string& br_taken,
                        const std::string& br_not) {
    const std::string l1 = "Lcf_" + dec(static_cast<std::uint32_t>(marker));
    s += br_not + "\n";                                   // must fall through
    s += "addiu $13, $13, " + dec(static_cast<std::uint32_t>(marker)) + "\n";
    s += br_taken.substr(0, br_taken.find('@')) + l1 +
         br_taken.substr(br_taken.find('@') + 1) + "\n";  // must skip
    s += "addiu $13, $13, " + dec(static_cast<std::uint32_t>(marker * 2)) + "\n";  // delay slot
    s += "addiu $13, $13, " + dec(static_cast<std::uint32_t>(marker * 4)) + "\n";  // skipped when taken
    s += l1 + ":\n";
    marker <<= 1;
  };
  // $8 = -1, $9 = 1.
  taken_pair("beq $8, $8, @", "beq $8, $9, Lcf_never");
  taken_pair("bne $8, $9, @", "bne $9, $9, Lcf_never");
  taken_pair("bltz $8, @", "bltz $9, Lcf_never");
  taken_pair("bgez $9, @", "bgez $8, Lcf_never");
  taken_pair("blez $8, @", "blez $9, Lcf_never");
  taken_pair("bgtz $9, @", "bgtz $8, Lcf_never");
  s += "blez $0, Lcf_zero\n";  // zero is <= 0: taken
  s += "addiu $13, $13, 1\n";
  s += "addiu $13, $13, " + hex(0x4000u) + "\n";
  s += "Lcf_zero:\n";
  // Linking branches.
  s += "bltzal $8, Lcf_link1\n";
  s += "addiu $13, $13, 2\n";
  s += "addiu $13, $13, " + hex(0x1000u) + "\n";
  s += "Lcf_link1:\n";
  s += "sw $31, 0($30)\n";
  s += "bgezal $9, Lcf_link2\n";
  s += "addiu $13, $13, 3\n";
  s += "addiu $13, $13, " + hex(0x2000u) + "\n";
  s += "Lcf_link2:\n";
  s += "sw $31, 4($30)\n";
  // Backward branch: small countdown loop.
  s += "li $8, 3\n";
  s += "Lcf_loop:\n";
  s += "addiu $8, $8, -1\n";
  s += "bne $8, $0, Lcf_loop\n";
  s += "addiu $13, $13, 16\n";
  // jal / jr / jalr / j.
  s += "jal Lcf_sub\n";
  s += "addiu $13, $13, 32\n";
  s += "sw $31, 8($30)\n";
  s += "la $9, Lcf_sub\n";
  s += "jalr $31, $9\n";  // link into $31 so Lcf_sub's jr $31 returns here
  s += "addiu $13, $13, 64\n";
  s += "sw $31, 12($30)\n";
  s += "j Lcf_done\n";
  s += "addiu $13, $13, 128\n";
  s += "Lcf_never:\n";
  s += "addiu $13, $13, " + hex(0x7000u) + "\n";  // only reached on fault
  s += "Lcf_sub:\n";
  s += "jr $31\n";
  s += "addiu $13, $13, 256\n";
  s += "Lcf_done:\n";
  s += "sw $13, 16($30)\n";
  return RoutineSpec{"cflow", plasma::PlasmaComponent::kPcl, std::move(s), ""};
}

RoutineSpec routine_for(plasma::PlasmaComponent component, std::uint32_t buf) {
  using plasma::PlasmaComponent;
  switch (component) {
    case PlasmaComponent::kRegF:  return regfile_routine(buf);
    case PlasmaComponent::kMulD:  return muldiv_routine(buf);
    case PlasmaComponent::kAlu:   return alu_routine(buf);
    case PlasmaComponent::kBsh:   return shifter_routine(buf);
    case PlasmaComponent::kMctrl: return memctrl_routine(buf);
    case PlasmaComponent::kPcl:
    case PlasmaComponent::kCtrl:
    case PlasmaComponent::kBmux:  return control_flow_routine(buf);
    default:
      throw std::invalid_argument(
          "no library routine for component (hidden components are tested "
          "collaterally)");
  }
}

}  // namespace sbst::core
