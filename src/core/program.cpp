#include "core/program.h"

#include <stdexcept>

#include "iss/iss.h"

namespace sbst::core {

void SelfTestProgramBuilder::add_component(plasma::PlasmaComponent component) {
  add_routine(routine_for(component, next_buf_));
}

void SelfTestProgramBuilder::add_routine(RoutineSpec spec) {
  routines_.push_back(std::move(spec));
  next_buf_ += kResultBufferStride;
}

SelfTestProgram SelfTestProgramBuilder::build(std::string name) const {
  SelfTestProgram p;
  p.name = std::move(name);
  std::string src;
  src += "# Software-based self-test program: " + p.name + "\n";
  for (const RoutineSpec& r : routines_) {
    src += "\n# ======== routine: " + r.name + " ========\n";
    src += r.code;
    p.routines.push_back(r.name);
  }
  src += "\nhalt\n";
  for (const RoutineSpec& r : routines_) {
    if (!r.data.empty()) {
      src += "\n# data for " + r.name + "\n" + r.data;
    }
  }
  p.source = std::move(src);
  p.image = isa::assemble(p.source);
  p.words = p.image.size_words();

  iss::Iss iss(p.image);
  const iss::RunResult run = iss.run(1'000'000);
  p.cycles = run.cycles;
  p.instructions = run.instructions;
  p.halted = run.halted;
  if (!p.halted) {
    throw std::runtime_error("self-test program '" + p.name +
                             "' did not halt");
  }
  return p;
}

namespace {

SelfTestProgram build_phases(const std::vector<ComponentInfo>& classified,
                             bool with_b, bool with_c,
                             const std::string& name) {
  SelfTestProgramBuilder b;
  for (const ComponentInfo& c :
       components_of_class(classified, ComponentClass::kFunctional)) {
    b.add_component(c.component);
  }
  if (with_b) b.add_component(plasma::PlasmaComponent::kMctrl);
  if (with_c) b.add_component(plasma::PlasmaComponent::kPcl);
  return b.build(name);
}

}  // namespace

SelfTestProgram build_phase_a(const std::vector<ComponentInfo>& classified) {
  return build_phases(classified, false, false, "Phase A");
}

SelfTestProgram build_phase_ab(const std::vector<ComponentInfo>& classified) {
  return build_phases(classified, true, false, "Phase A+B");
}

SelfTestProgram build_phase_abc(const std::vector<ComponentInfo>& classified) {
  return build_phases(classified, true, true, "Phase A+B+C");
}

}  // namespace sbst::core
