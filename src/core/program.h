// Self-test program assembly: stitches component routines (in test
// priority order) into one downloadable program, assembles it, and
// measures the Table 4 statistics (program words, execution clock
// cycles) on the ISS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/routines.h"
#include "isa/assembler.h"

namespace sbst::core {

struct SelfTestProgram {
  std::string name;
  std::string source;                 // complete assembly listing
  isa::Program image;                 // assembled memory image
  std::vector<std::string> routines;  // routine names, in order

  // Table 4 statistics.
  std::size_t words = 0;      // program+data words downloaded by the tester
  std::uint64_t cycles = 0;   // execution clock cycles (ISS, pipeline-exact)
  std::uint64_t instructions = 0;
  bool halted = false;
};

/// Base byte address of the first routine's result buffer; each routine
/// gets a 0x200-byte window.
inline constexpr std::uint32_t kResultBufferBase = 0x3000;
inline constexpr std::uint32_t kResultBufferStride = 0x400;

class SelfTestProgramBuilder {
 public:
  /// Appends a routine for `component`, allocating its result buffer.
  void add_component(plasma::PlasmaComponent component);
  void add_routine(RoutineSpec spec);

  /// Assembles (prologue + routines + halt + data tables), runs the ISS
  /// for the timing statistics, and verifies the program halts.
  SelfTestProgram build(std::string name) const;

 private:
  std::vector<RoutineSpec> routines_;
  std::uint32_t next_buf_ = kResultBufferBase;
};

/// Phase A: the functional components in test-priority order (descending
/// measured size).
SelfTestProgram build_phase_a(const std::vector<ComponentInfo>& classified);
/// Phase A+B: Phase A plus the highest-priority control component routine
/// (the memory controller).
SelfTestProgram build_phase_ab(const std::vector<ComponentInfo>& classified);
/// Extension: Phase A+B plus the control-flow routine for the remaining
/// control components (PCL/CTRL/BMUX).
SelfTestProgram build_phase_abc(const std::vector<ComponentInfo>& classified);

}  // namespace sbst::core
