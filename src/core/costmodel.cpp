#include "core/costmodel.h"

namespace sbst::core {

TestTime test_application_time(std::size_t words, std::uint64_t cycles,
                               std::size_t response_words,
                               const TestTimeParams& params) {
  TestTime t;
  t.download_us = static_cast<double>(words) / params.tester_mhz;
  t.execute_us = static_cast<double>(cycles) / params.cpu_mhz;
  t.upload_us = static_cast<double>(response_words) / params.tester_mhz;
  return t;
}

}  // namespace sbst::core
